#include "obs/profile.hpp"

#include <chrono>
#include <vector>

namespace bc::obs {

namespace {

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-wide slot allocator for the thread-local depth table. Shared by
/// every Profiler object (tests create their own instances), so a slot
/// never refers to two different sites within one thread.
util::RelaxedCounter& slot_allocator() {
  static util::RelaxedCounter counter;
  return counter;
}

/// Per-thread recursion depths, indexed by ProfileSite::tls_slot. Grows on
/// first use of a site on this thread; pool workers get their own table, so
/// concurrent scopes of one site on different threads track independent
/// nesting depths (the outermost-frame test stays per-thread).
std::uint32_t& tls_depth(std::uint32_t slot) {
  thread_local std::vector<std::uint32_t> depths;
  if (depths.size() <= slot) depths.resize(slot + 1, 0);
  return depths[slot];
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

ProfileSite& Profiler::site(std::string_view name) {
  util::LockGuard lock(mu_);
  if (auto it = sites_.find(name); it != sites_.end()) {
    return it->second;
  }
  auto [it, _] = sites_.emplace(std::string(name), ProfileSite{});
  it->second.name = it->first;
  it->second.tls_slot = static_cast<std::uint32_t>(slot_allocator().fetch_add(1));
  return it->second;
}

void Profiler::record(ProfileSite& site, std::uint64_t elapsed_nanos,
                      bool outermost) {
  util::LockGuard lock(mu_);
  ++site.calls;
  if (outermost) site.nanos += elapsed_nanos;
}

std::vector<ProfileSite> Profiler::snapshot() const {
  util::LockGuard lock(mu_);
  std::vector<ProfileSite> out;
  out.reserve(sites_.size());
  for (const auto& [_, site] : sites_) out.push_back(site);
  return out;
}

std::size_t Profiler::num_sites() const {
  util::LockGuard lock(mu_);
  return sites_.size();
}

void Profiler::reset_values() {
  util::LockGuard lock(mu_);
  for (auto& [_, site] : sites_) {
    site.calls = 0;
    site.nanos = 0;
  }
}

ScopedTimer::ScopedTimer(ProfileSite& site, Profiler& profiler) {
  if (!profiler.enabled()) return;
  site_ = &site;
  profiler_ = &profiler;
  ++tls_depth(site.tls_slot);
  start_ = now_nanos();
}

ScopedTimer::~ScopedTimer() {
  if (site_ == nullptr) return;
  const std::uint64_t elapsed = now_nanos() - start_;
  const bool outermost = --tls_depth(site_->tls_slot) == 0;
  profiler_->record(*site_, elapsed, outermost);
}

}  // namespace bc::obs
