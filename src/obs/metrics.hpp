// Metrics registry: named counters, gauges, fixed-bucket histograms, and
// sharded log-bucket (HDR-style) histograms.
//
// Call sites cache the instrument reference once (typically in a
// function-local static) and touch only the instrument afterwards:
//
//   static obs::Counter& exchanges =
//       obs::Registry::instance().counter("gossip.exchanges");
//   exchanges.inc();
//
// Registry storage is node-based (std::map), so references returned by
// counter()/gauge()/histogram()/log_histogram() stay valid for the
// registry's lifetime, including across reset_values(). Snapshots iterate
// the maps in key order, which makes exported output deterministic
// run-to-run.
//
// Thread safety and sharding: instrumented code may run on
// bc::util::ThreadPool workers (the batch reputation sweeps), so the
// instrument maps are guarded by an annotated Mutex, and the two
// *recording* instruments — Counter and LogHistogram — are sharded:
// after Registry::configure_shards(n), each holds one cache-line-padded
// slot per parallel_for chunk and routes recordings through
// util::current_shard_slot(). Shard state is integer-only (counts and
// fixed-point sums), and merges walk slots in ascending order, so merged
// snapshots are bit-identical at any thread count — integer addition
// commutes and associates, unlike the double accumulation the serial-phase
// instruments keep. Counters additionally fall back to a relaxed-atomic
// add when no shard slot covers the caller, so they are safe from any
// thread even before configure_shards().
//
// Gauges and fixed-bucket histograms remain serial-phase instruments:
// their state is `double` (last-writer-wins / FP accumulation), which no
// commutative merge can make bit-stable across thread counts. They are
// only touched from engine callbacks and finalize(); a debug-mode
// owning-thread check (active under the `validate` preset) makes a pool
// worker touching one fail fast instead of silently racing.
//
// The registry does not know about simulation time; periodic snapshots are
// driven externally (see obs/stream.hpp, obs/export.hpp and
// community::CommunitySimulator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"
#include "util/checked.hpp"
#include "util/concurrency/atomic.hpp"
#include "util/concurrency/mutex.hpp"
#include "util/concurrency/shard_slot.hpp"

namespace bc::obs {

/// One per-chunk shard cell, padded to a cache line so two chunks never
/// false-share. Written by exactly one thread (the chunk's executor)
/// between barriers; read/merged only at serial phases.
struct alignas(64) ShardCell {
  std::uint64_t value = 0;
};

/// Monotonically increasing event count. Safe to increment from pool
/// workers: with shards enabled the increment is a plain add on the
/// caller's chunk cell; otherwise it is a relaxed-atomic add. Either way
/// the total is order-independent (integer addition commutes).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    const std::size_t slot = util::current_shard_slot();
    if (slot < shards_.size()) {
      shards_[slot].value += n;
      return;
    }
    value_.add(n);
  }

  /// Merged total: base plus every shard, ascending slot order.
  std::uint64_t value() const {
    std::uint64_t v = value_.load();
    for (const ShardCell& s : shards_) v += s.value;
    return v;
  }

  /// Serial-phase only: folds shards into the base and overwrites the
  /// total (used to republish externally-tracked totals, e.g. the
  /// reputation-cache tallies, through the windowed stream).
  void store_total(std::uint64_t v) {
    for (ShardCell& s : shards_) s.value = 0;
    value_.store(v);
  }

  /// Serial-phase only (a phase barrier): moves shard partials into the
  /// base so shard cells start the next parallel phase at zero.
  void fold_shards() {
    std::uint64_t folded = 0;
    for (ShardCell& s : shards_) {
      folded += s.value;
      s.value = 0;
    }
    if (folded > 0) value_.add(folded);
  }

  /// Serial-phase only: grows the shard array to `n` slots (never
  /// shrinks, so references and running totals survive reconfiguration).
  void enable_shards(std::size_t n) {
    if (n > shards_.size()) shards_.resize(n);
  }

  void reset() {
    value_.store(0);
    for (ShardCell& s : shards_) s.value = 0;
  }

 private:
  util::RelaxedCounter value_;
  std::vector<ShardCell> shards_;
};

/// Point-in-time measurement (last writer wins). Serial-phase only: set
/// from engine callbacks or finalize(), never from pool workers — the
/// debug owning-thread check below fails fast under the validate preset.
class Gauge {
 public:
  void set(double v) {
    debug_check_serial_phase();
    value_ = v;
  }
  void add(double d) {
    debug_check_serial_phase();
    value_ += d;
  }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  void debug_check_serial_phase() const {
    // Slot != 0 means we are inside a pool worker's parallel_for chunk;
    // a foreign thread tag means another thread entirely. Both are the
    // race-by-convention this instrument's contract forbids.
    BC_DASSERT(util::current_shard_slot() == 0 &&
               util::current_thread_tag() == owner_);
  }

  double value_ = 0.0;
  /// Owning thread, captured at creation (debug-check identity only —
  /// never ordered or hashed, so no pointer-order nondeterminism).
  const void* owner_ = util::current_thread_tag();
};

/// Fixed-bucket histogram with explicit ascending upper edges. A value v
/// lands in the first bucket whose upper edge satisfies v <= edge; values
/// above the last edge land in an implicit overflow bucket, so total()
/// always equals the number of add() calls. Serial-phase only (double
/// `sum` accumulation), with the same debug owning-thread check as Gauge.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> upper_edges);

  /// Uniform edges covering [lo, hi] with `num_buckets` finite buckets
  /// (the overflow bucket comes on top).
  static std::vector<double> uniform_edges(double lo, double hi,
                                           std::size_t num_buckets);

  void add(double value);

  /// Finite buckets plus the overflow bucket.
  std::size_t num_buckets() const { return counts_.size(); }
  /// Upper edge of bucket `i`; the overflow bucket reports +infinity.
  double upper_edge(std::size_t i) const;
  std::uint64_t count(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  const std::vector<double>& edges() const { return edges_; }

  void reset();

 private:
  std::vector<double> edges_;           // ascending finite upper bounds
  std::vector<std::uint64_t> counts_;   // edges_.size() + 1 (overflow last)
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  const void* owner_ = util::current_thread_tag();
};

/// Geometry of a LogHistogram: sign-symmetric logarithmic buckets —
/// power-of-two octaves split into 2^sub_bits linear sub-buckets (the
/// HDR-histogram shape). Memory is O(octaves * sub-buckets), fixed at
/// construction and independent of how many values are recorded.
struct LogSpec {
  /// |v| below 2^min_exp2 (including 0) lands in the dedicated zero
  /// bucket; |v| at or above 2^max_exp2 clamps into the top sub-bucket.
  int min_exp2 = -20;
  int max_exp2 = 40;
  /// Sub-buckets per octave = 2^sub_bits: relative bucket width
  /// ~2^-sub_bits (3 -> ~12% worst-case quantile error).
  unsigned sub_bits = 3;
  /// Mirror the positive layout for negative values.
  bool with_negative = false;
  /// sum() is accumulated in fixed point with quantum 2^-sum_frac_bits,
  /// so shard merges stay integer (deterministic at any thread count).
  int sum_frac_bits = 20;

  /// Seconds-scale durations: ~1 us resolution up to ~2^20 s.
  static LogSpec latency_seconds() { return {-20, 20, 3, false, 20}; }
  /// Byte counts / cardinalities: 1 .. 2^40.
  static LogSpec magnitude() { return {0, 40, 3, false, 0}; }
  /// Signed scores in [-1, 1] (BarterCast reputations): resolution
  /// 2^-12 ~ 2.4e-4 near zero.
  static LogSpec signed_unit() { return {-12, 1, 3, true, 20}; }
};

/// Sharded logarithmic-bucket histogram with O(buckets) merge and
/// quantile summaries. All state is integer (bucket counts plus a
/// fixed-point sum), bucket indexing is exact integer math on the
/// mantissa/exponent (std::frexp — no transcendental rounding), and
/// merges are commutative sums, so merged snapshots are bit-identical at
/// any thread count. Buckets are stored in ascending *value* order
/// (negative octaves high-to-low magnitude, zero, positive octaves
/// low-to-high), so quantile() is one forward scan.
class LogHistogram {
 public:
  LogHistogram(const LogSpec& spec, std::size_t num_shards);

  /// Records one value (NaN is a caller bug). Routes to the caller's
  /// shard slot; without a covering shard, falls back to the serial base
  /// state — which a pool chunk must never touch (debug-checked).
  void observe(double v) {
    const std::size_t idx = index_of(v);
    const std::int64_t units = to_units(v);
    const std::size_t slot = util::current_shard_slot();
    if (slot < shards_.size()) {
      Shard& s = shards_[slot];
      ++s.counts[idx];
      ++s.total;
      // Fixed-point sums saturate: a histogram must degrade, not abort
      // or wrap, when fed month-scale totals.
      s.sum_units = util::saturating_add(s.sum_units, units);
      return;
    }
    BC_DASSERT(slot == 0);  // pool chunk without a shard would race
    ++counts_[idx];
    ++total_;
    sum_units_ = util::saturating_add(sum_units_, units);
  }

  const LogSpec& spec() const { return spec_; }
  std::size_t num_buckets() const { return counts_.size(); }

  /// Bucket index a value lands in (exposed for tests/export tooling).
  std::size_t index_of(double v) const;
  /// Upper value bound of bucket `i` (buckets ascend in value).
  double upper_edge(std::size_t i) const;

  // Merged views (serial-phase): base plus shards, ascending slot order.
  std::uint64_t count(std::size_t i) const;
  std::uint64_t total() const;
  std::int64_t sum_units() const;
  double sum() const;
  /// Upper edge of the bucket holding the q-quantile (q in [0, 1]) of
  /// everything recorded; 0 when empty.
  double quantile(double q) const;
  /// Upper edge of the highest non-empty bucket; 0 when empty.
  double max_value() const;

  /// Serial-phase only (a phase barrier): folds shard state into the
  /// base, zeroing the shards for the next parallel phase.
  void fold_shards();
  /// Serial-phase only: grows the shard array to `n` slots.
  void enable_shards(std::size_t n);
  /// Adds `other`'s merged state into this base. O(buckets); specs must
  /// have identical geometry.
  void merge_from(const LogHistogram& other);

  void reset();

 private:
  struct Shard {
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    std::int64_t sum_units = 0;
  };

  std::int64_t to_units(double v) const;

  LogSpec spec_;
  std::size_t per_sign_ = 0;  // buckets per sign = octaves * 2^sub_bits
  std::size_t zero_index_ = 0;
  double min_mag_ = 0.0;  // 2^min_exp2
  std::vector<std::uint64_t> counts_;  // base state, ascending value order
  std::uint64_t total_ = 0;
  std::int64_t sum_units_ = 0;
  std::vector<Shard> shards_;
};

/// Value-copies of every instrument, sorted by name.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> counts;  // incl. trailing overflow bucket
  std::uint64_t total = 0;
  double sum = 0.0;
};

struct LogHistogramSnapshot {
  std::string name;
  /// Non-empty buckets only, ascending index (= ascending value).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  /// Upper value edge of each entry in `buckets` (parallel vector) — lets
  /// consumers (the windowed stream) compute quantiles over bucket deltas
  /// without the histogram's geometry at hand.
  std::vector<double> bucket_edges;
  std::uint64_t total = 0;
  double sum = 0.0;
  /// Exact fixed-point sum (quantum 2^-sum_frac_bits): integer, so window
  /// deltas between snapshots subtract exactly.
  std::int64_t sum_units = 0;
  int sum_frac_bits = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<LogHistogramSnapshot> log_histograms;
};

class Registry {
 public:
  Registry() = default;

  /// The process-wide registry used by the BC instrumentation sites.
  static Registry& instance();

  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime. For histogram()/log_histogram(), the geometry
  /// argument is consumed only on first creation; later lookups ignore it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> upper_edges);
  LogHistogram& log_histogram(std::string_view name, const LogSpec& spec);

  /// Serial-phase only: guarantees every sharded instrument (existing and
  /// future) has at least `n` shard slots — call with the ThreadPool size
  /// before the first parallel phase that records. Never shrinks.
  void configure_shards(std::size_t n);
  std::size_t shard_slots() const;

  /// Serial-phase only (the phase-barrier merge): folds every sharded
  /// instrument's shard partials into its base state, ascending slot
  /// order, leaving shards zeroed for the next parallel phase.
  void fold_shards();

  Snapshot snapshot() const;

  std::size_t num_instruments() const;

  /// Zeroes every instrument but keeps registrations (and therefore all
  /// outstanding references) intact.
  void reset_values();

 private:
  mutable util::Mutex mu_;
  std::size_t shard_slots_ BC_GUARDED_BY(mu_) = 0;
  std::map<std::string, Counter, std::less<>> counters_ BC_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ BC_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      BC_GUARDED_BY(mu_);
  std::map<std::string, LogHistogram, std::less<>> log_histograms_
      BC_GUARDED_BY(mu_);
};

}  // namespace bc::obs
