// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Call sites cache the instrument reference once (typically in a
// function-local static) and touch only the instrument afterwards:
//
//   static obs::Counter& exchanges =
//       obs::Registry::instance().counter("gossip.exchanges");
//   exchanges.inc();
//
// Registry storage is node-based (std::map), so references returned by
// counter()/gauge()/histogram() stay valid for the registry's lifetime,
// including across reset_values(). Snapshots iterate the map in key order,
// which makes exported output deterministic run-to-run.
//
// Thread safety: instrumented code may run on bc::util::ThreadPool workers
// (the batch reputation sweeps), so the instrument maps are guarded by an
// annotated Mutex and Counter::inc is a relaxed atomic add — safe from any
// thread, and deterministic at any thread count because integer addition
// commutes. Gauges and histograms are serial-phase instruments: they are
// only touched from engine callbacks and finalize(), never from pool
// workers (the TSan `parallel` suite would catch a violation).
//
// The registry does not know about simulation time; periodic snapshots are
// driven externally (see obs/export.hpp and community::CommunitySimulator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/concurrency/atomic.hpp"
#include "util/concurrency/mutex.hpp"

namespace bc::obs {

/// Monotonically increasing event count. Safe to increment from pool
/// workers: the add is relaxed-atomic and the total is order-independent.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.add(n); }
  std::uint64_t value() const { return value_.load(); }
  void reset() { value_.store(0); }

 private:
  util::RelaxedCounter value_;
};

/// Point-in-time measurement (last writer wins). Serial-phase only: set
/// from engine callbacks or finalize(), never from pool workers.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram with explicit ascending upper edges. A value v
/// lands in the first bucket whose upper edge satisfies v <= edge; values
/// above the last edge land in an implicit overflow bucket, so total()
/// always equals the number of add() calls.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> upper_edges);

  /// Uniform edges covering [lo, hi] with `num_buckets` finite buckets
  /// (the overflow bucket comes on top).
  static std::vector<double> uniform_edges(double lo, double hi,
                                           std::size_t num_buckets);

  void add(double value);

  /// Finite buckets plus the overflow bucket.
  std::size_t num_buckets() const { return counts_.size(); }
  /// Upper edge of bucket `i`; the overflow bucket reports +infinity.
  double upper_edge(std::size_t i) const;
  std::uint64_t count(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  const std::vector<double>& edges() const { return edges_; }

  void reset();

 private:
  std::vector<double> edges_;           // ascending finite upper bounds
  std::vector<std::uint64_t> counts_;   // edges_.size() + 1 (overflow last)
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Value-copies of every instrument, sorted by name.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> counts;  // incl. trailing overflow bucket
  std::uint64_t total = 0;
  double sum = 0.0;
};

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class Registry {
 public:
  Registry() = default;

  /// The process-wide registry used by the BC instrumentation sites.
  static Registry& instance();

  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime. For histogram(), `upper_edges` is consumed only
  /// on first creation; later lookups ignore it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> upper_edges);

  Snapshot snapshot() const;

  std::size_t num_instruments() const;

  /// Zeroes every instrument but keeps registrations (and therefore all
  /// outstanding references) intact.
  void reset_values();

 private:
  mutable util::Mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_ BC_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ BC_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      BC_GUARDED_BY(mu_);
};

}  // namespace bc::obs
