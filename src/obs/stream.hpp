// Windowed metrics streaming: newline-delimited JSON (NDJSON) export of
// per-window *deltas*, one line per window, appended while the run is in
// flight. Where export.hpp serializes cumulative end-of-run state, this
// module answers "what happened during the last hour of sim time" —
// tail-able, plottable, and cheap enough to leave on for soak runs.
//
// Line schema (schema id "bc.metrics.window.v1"):
//
//   {"schema": "bc.metrics.window.v1", "seq": 0, "t": 3600,
//    "counters": {"name": delta, ...},              // non-zero deltas only
//    "gauges": {"name": value, ...},                // current values
//    "log_histograms": {"name": {"buckets": [[index, delta], ...],
//                                "total": delta, "sum": delta,
//                                "p50": x, "p99": x, "max": x}, ...}}
//
// Delta encoding is exact: counters and log-histogram state are integers
// (fixed-point sums included), so summing a column across every line
// reproduces the end-of-run cumulative total bit-for-bit — the regression
// suite asserts exactly that. Quantiles are computed over the *window's*
// bucket deltas, i.e. p99 of what happened this window, not since boot.
// Instruments are emitted sorted by name and doubles use the same "%g"
// formatting as export.cpp, so two runs with identical metric histories
// produce byte-identical streams — the determinism suite diffs streams
// across --threads 1/2/4/8.
//
// The stream owns no timer: whoever owns a sim::Engine pumps emit_window
// (community::CommunitySimulator schedules it via Engine::schedule_periodic
// at the configured snapshot interval, plus one final partial window at
// finalize).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace bc::obs {

class MetricsStream {
 public:
  MetricsStream() = default;

  /// Opens `path` (truncating) and captures the current registry state as
  /// the delta baseline, so windows cover activity *after* open. Returns
  /// false (and stays closed) when the file cannot be created.
  bool open(const std::string& path, const Registry& registry);

  bool is_open() const { return out_.is_open(); }
  std::uint64_t windows_written() const { return windows_; }

  /// Appends one NDJSON line covering (previous emit, t] and resets the
  /// window baseline. No-op while closed. Empty windows still emit a line
  /// (with empty instrument maps), keeping the stream's time axis regular.
  void emit_window(const Registry& registry, Seconds t);

  void close();

 private:
  std::ofstream out_;
  Snapshot prev_;
  std::uint64_t windows_ = 0;
};

}  // namespace bc::obs
