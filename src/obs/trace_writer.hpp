// Sim-time event tracer emitting Chrome trace-event JSON.
//
// Events are timestamped with *simulation* time (microseconds, as the
// Trace Event Format requires), so the resulting file — loadable in
// chrome://tracing or https://ui.perfetto.dev — shows the run on the
// simulated clock: engine dispatches, gossip exchanges, choke rescans, and
// counter tracks of the metrics registry, all on one timeline.
//
// The tracer is disabled by default; every emit helper is a no-op until
// set_enabled(true), so default runs pay one branch per candidate event.
// Events buffer in memory and are serialized at end of run (write_json /
// write_file); sims emit at most a few hundred thousand events, well
// within memory for the scales the tracer is meant for. Serialization is
// deterministic: integer microsecond timestamps, insertion order.
//
// Supported phases: 'i' (instant), 'X' (complete, with duration), and
// 'C' (counter, plotted as a track). String args are JSON-escaped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace bc::obs {

/// JSON-escapes a string for embedding between double quotes.
std::string json_escape(std::string_view s);

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'i';
  std::uint64_t ts_us = 0;   // simulation time, microseconds
  std::uint64_t dur_us = 0;  // 'X' only
  double value = 0.0;        // 'C' only
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  Tracer() = default;

  /// The process-wide tracer the instrumentation sites emit into.
  static Tracer& instance();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Point event at sim time `t`.
  void instant(std::string name, std::string category, Seconds t,
               Args args = {});
  /// Span event covering [start, start + duration] of sim time.
  void complete(std::string name, std::string category, Seconds start,
                Seconds duration, Args args = {});
  /// Counter sample; same-name samples form a plotted track.
  void counter(std::string name, Seconds t, double value);

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void reset() { events_.clear(); }

  /// Serializes {"traceEvents":[...]} (the JSON-object form of the format).
  void write_json(std::ostream& os) const;
  std::string to_json() const;
  /// Returns false when the file could not be written.
  bool write_file(const std::string& path) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace bc::obs
