// Sim-time event tracer emitting Chrome trace-event JSON.
//
// Events are timestamped with *simulation* time (microseconds, as the
// Trace Event Format requires), so the resulting file — loadable in
// chrome://tracing or https://ui.perfetto.dev — shows the run on the
// simulated clock: engine dispatches, gossip exchanges, choke rescans, and
// counter tracks of the metrics registry, all on one timeline.
//
// The tracer is disabled by default; every emit helper is a no-op until
// set_enabled(true), so default runs pay one branch per candidate event.
// Events buffer in memory and are serialized at end of run (write_json /
// write_file); sims emit at most a few hundred thousand events, well
// within memory for the scales the tracer is meant for. Serialization is
// deterministic: integer microsecond timestamps, chronological order.
//
// Flight-recorder mode: set_ring_capacity(N) bounds the buffer to the
// most recent N events — older events are overwritten in place, so a
// week-long soak records at O(N) memory and a dump shows the last window
// leading up to whatever went wrong. Dumps are explicit: dump_now()
// writes the buffer to the configured dump path; arm_signal_dump()
// requests one from a signal handler (served at the next
// poll_signal_dump() call site, since writing files inside a handler is
// undefined); and check::set_failure_observer can route audit failures
// into dump_now() before the process aborts.
//
// Supported phases: 'i' (instant), 'X' (complete, with duration), and
// 'C' (counter, plotted as a track). String args are JSON-escaped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace bc::obs {

/// JSON-escapes a string for embedding between double quotes.
std::string json_escape(std::string_view s);

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'i';
  std::uint64_t ts_us = 0;   // simulation time, microseconds
  std::uint64_t dur_us = 0;  // 'X' only
  double value = 0.0;        // 'C' only
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  Tracer() = default;

  /// The process-wide tracer the instrumentation sites emit into.
  static Tracer& instance();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Point event at sim time `t`.
  void instant(std::string name, std::string category, Seconds t,
               Args args = {});
  /// Span event covering [start, start + duration] of sim time.
  void complete(std::string name, std::string category, Seconds start,
                Seconds duration, Args args = {});
  /// Counter sample; same-name samples form a plotted track.
  void counter(std::string name, Seconds t, double value);

  std::size_t size() const { return events_.size(); }
  /// Raw buffer, insertion order. Chronological only while unbounded;
  /// with a ring capacity set, use chronological() instead.
  const std::vector<TraceEvent>& events() const { return events_; }
  void reset() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Flight recorder: bounds the buffer to the most recent `cap` events
  /// (0 restores unbounded buffering). Only valid while the buffer is
  /// empty — configure before the run, not mid-flight.
  void set_ring_capacity(std::size_t cap);
  std::size_t ring_capacity() const { return ring_capacity_; }
  /// Events overwritten by ring wrap-around since the last reset().
  std::uint64_t dropped_events() const { return dropped_; }
  /// Buffered events oldest-to-newest, resolving ring wrap-around.
  std::vector<TraceEvent> chronological() const;

  /// Where dump_now() writes; empty disables dumping.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }
  /// Writes the current buffer (chronological) to the dump path. False
  /// when no path is configured or the write failed.
  bool dump_now() const;
  /// Installs a handler on `signum` that *requests* a dump; the file is
  /// written at the next poll_signal_dump() call (signal-safe split).
  void arm_signal_dump(int signum);
  /// Serves a pending signal-requested dump; true when one was written.
  bool poll_signal_dump();

  /// Serializes {"traceEvents":[...]} (the JSON-object form of the format).
  void write_json(std::ostream& os) const;
  std::string to_json() const;
  /// Returns false when the file could not be written.
  bool write_file(const std::string& path) const;

 private:
  void push(TraceEvent ev);

  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  std::size_t ring_capacity_ = 0;  // 0 = unbounded
  std::size_t head_ = 0;           // oldest event once the ring wrapped
  std::uint64_t dropped_ = 0;
  std::string dump_path_;
};

}  // namespace bc::obs
