// Export plumbing: serializing the registry and profiler to JSON/CSV and
// bridging registry counters into the sim-time tracer.
//
// The JSON document groups instruments by kind:
//
//   { "counters": {...}, "gauges": {...},
//     "histograms": {"name": {"upper_edges": [...], "counts": [...],
//                             "total": n, "sum": x}},
//     "log_histograms": {"name": {"buckets": [[index, count], ...],
//                                 "total": n, "sum": x, "p50": x,
//                                 "p90": x, "p99": x, "max": x}},
//     "profile": {"site": {"calls": n, "total_ns": n}} }
//
// All emission is deterministic (instruments sorted by name). Periodic
// snapshotting is driven by whoever owns a sim::Engine — typically
// community::CommunitySimulator scheduling snapshot_counters_to_trace via
// Engine::schedule_periodic — so this module stays independent of the
// engine and usable from plain tools.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"
#include "util/units.hpp"

namespace bc::obs {

/// Full JSON dump of the registry plus profiler (see format above).
std::string metrics_json(const Registry& registry, const Profiler& profiler);

/// Flat `name,kind,value` CSV of counters and gauges; histogram buckets
/// emit one `name[le=edge],histogram,count` row each.
std::string metrics_csv(const Registry& registry);

/// Human-readable profile table: site, calls, total ms, mean us per call.
std::string profile_report(const Profiler& profiler);

/// Emits one 'C' counter event per registry counter at sim time `t`;
/// repeated calls build per-counter tracks in the trace viewer. No-op
/// while the tracer is disabled.
void snapshot_counters_to_trace(const Registry& registry, Tracer& tracer,
                                Seconds t);

/// Returns false when the file could not be (fully) written.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace bc::obs
