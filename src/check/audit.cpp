#include "check/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bc::check {

namespace {

bool g_enabled = kValidateBuild;
FailureHandler g_handler;  // empty -> default print-and-abort
std::function<void(const std::string&)> g_observer;
std::uint64_t g_audits_run = 0;
std::uint64_t g_violations_found = 0;

[[noreturn]] void default_failure(const std::string& name,
                                  const Report& report) {
  std::fprintf(stderr, "bc::check audit '%s' failed: %s\n", name.c_str(),
               report.to_string().c_str());
  std::abort();
}

}  // namespace

bool enabled() { return g_enabled; }

void set_enabled(bool on) { g_enabled = on; }

void set_failure_handler(FailureHandler handler) {
  g_handler = std::move(handler);
}

void set_failure_observer(std::function<void(const std::string&)> fn) {
  g_observer = std::move(fn);
}

void report_failure(const std::string& name, const Report& report) {
  if (report.ok()) return;
  g_violations_found += report.size();
  if (g_observer) g_observer(name);
  if (g_handler) {
    g_handler(name, report);
  } else {
    default_failure(name, report);
  }
}

ScopedAudit::ScopedAudit(std::string name, AuditFn fn)
    : name_(std::move(name)), fn_(std::move(fn)) {}

ScopedAudit::~ScopedAudit() {
  if (armed_) check_now();
}

bool ScopedAudit::check_now() {
  if (!enabled() || !fn_) return true;
  ++g_audits_run;
  Report report;
  fn_(report);
  report_failure(name_, report);
  return report.ok();
}

std::uint64_t ScopedAudit::audits_run() { return g_audits_run; }

std::uint64_t ScopedAudit::violations_found() { return g_violations_found; }

}  // namespace bc::check
