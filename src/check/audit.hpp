// Fail-stop auditing hooks around the bc::check validators.
//
// A ScopedAudit runs a validator callback at scope exit (and on demand via
// check_now()), turning Report violations into a fail-stop through a
// replaceable failure handler -- the default prints the report and aborts,
// mirroring BC_ASSERT; tests install a capturing handler instead.
//
// Auditing is opt-in at runtime via set_enabled(). The default follows the
// BARTERCAST_VALIDATE CMake option: validate builds audit out of the box,
// regular builds pay only a branch per hook until a caller (for example
// `swarm_simulation --validate`) switches auditing on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "check/invariants.hpp"

namespace bc::check {

/// True when the build was configured with -DBARTERCAST_VALIDATE=ON.
#ifdef BARTERCAST_VALIDATE
inline constexpr bool kValidateBuild = true;
#else
inline constexpr bool kValidateBuild = false;
#endif

/// Whether audit hooks run. Starts as kValidateBuild.
bool enabled();
void set_enabled(bool on);

/// Invoked when an audit surfaces violations. `name` identifies the audit
/// site (e.g. "community.round").
using FailureHandler =
    std::function<void(const std::string& name, const Report& report)>;

/// Replaces the failure handler; passing nullptr restores the default
/// print-and-abort behaviour.
void set_failure_handler(FailureHandler handler);

/// Observer invoked before the failure handler whenever a non-ok report
/// is routed through report_failure. Runs even when the handler aborts,
/// so last-gasp diagnostics (e.g. the obs flight-recorder dump) get out
/// first. Passing nullptr removes it.
void set_failure_observer(std::function<void(const std::string& name)> fn);

/// Routes a non-ok report through the current failure handler (no-op for a
/// clean report). Audit call sites outside ScopedAudit use this directly.
void report_failure(const std::string& name, const Report& report);

/// RAII audit hook: runs the callback once at scope exit while enabled().
class ScopedAudit {
 public:
  using AuditFn = std::function<void(Report&)>;

  ScopedAudit(std::string name, AuditFn fn);
  ~ScopedAudit();

  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;

  /// Runs the audit immediately (while enabled); violations go through the
  /// failure handler. Returns false when violations were found.
  bool check_now();

  /// Disarms the scope-exit audit, e.g. on an error path that already
  /// reported.
  void dismiss() { armed_ = false; }

  /// Process-wide counters, for tests and ops visibility.
  static std::uint64_t audits_run();
  static std::uint64_t violations_found();

 private:
  std::string name_;
  AuditFn fn_;
  bool armed_ = true;
};

}  // namespace bc::check
