#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/maxflow.hpp"
#include "util/checked.hpp"
#include "util/sorted_view.hpp"

namespace bc::check {

namespace {

std::string peer_str(PeerId id) {
  return id == kInvalidPeer ? std::string("<invalid>") : std::to_string(id);
}

std::string edge_str(PeerId from, PeerId to) {
  return "(" + peer_str(from) + " -> " + peer_str(to) + ")";
}

}  // namespace

void Report::fail(std::string invariant, std::string detail) {
  violations_.push_back({std::move(invariant), std::move(detail)});
}

bool Report::has(std::string_view invariant) const {
  return std::any_of(violations_.begin(), violations_.end(),
                     [&](const Violation& v) { return v.invariant == invariant; });
}

std::string Report::to_string() const {
  if (ok()) return "all invariants hold";
  std::string out = std::to_string(violations_.size()) + " violation(s):";
  for (const auto& v : violations_) {
    out += "\n  [" + v.invariant + "] " + v.detail;
  }
  return out;
}

// --- ledger ----------------------------------------------------------------

void check_history(const bartercast::PrivateHistory& history, Report& report) {
  Bytes sum_up = 0;
  Bytes sum_down = 0;
  for (const auto& e : history.entries()) {
    if (e.peer == kInvalidPeer) {
      report.fail("ledger.entry_peer", "history of peer " +
                                           peer_str(history.owner()) +
                                           " has an invalid-peer entry");
      continue;
    }
    if (e.peer == history.owner()) {
      report.fail("ledger.self_entry", "history of peer " +
                                           peer_str(history.owner()) +
                                           " has an entry about itself");
    }
    if (e.uploaded < 0 || e.downloaded < 0) {
      report.fail("ledger.negative",
                  "history of peer " + peer_str(history.owner()) + " entry " +
                      peer_str(e.peer) +
                      " has negative bytes: up=" + std::to_string(e.uploaded) +
                      " down=" + std::to_string(e.downloaded));
    }
    // The audit must degrade (report a mismatch) rather than trap on a
    // hostile ledger, so the tally saturates instead of wrapping.
    sum_up = util::saturating_add(sum_up, e.uploaded);
    sum_down = util::saturating_add(sum_down, e.downloaded);
  }
  if (sum_up != history.total_uploaded()) {
    report.fail("ledger.total_up",
                "history of peer " + peer_str(history.owner()) +
                    ": cached total_uploaded=" +
                    std::to_string(history.total_uploaded()) +
                    " but entries sum to " + std::to_string(sum_up));
  }
  if (sum_down != history.total_downloaded()) {
    report.fail("ledger.total_down",
                "history of peer " + peer_str(history.owner()) +
                    ": cached total_downloaded=" +
                    std::to_string(history.total_downloaded()) +
                    " but entries sum to " + std::to_string(sum_down));
  }
}

void check_ledger_conservation(
    const std::vector<const bartercast::PrivateHistory*>& ledgers,
    Bytes expected_transferred, Report& report) {
  std::unordered_map<PeerId, const bartercast::PrivateHistory*> by_owner;
  for (const auto* h : ledgers) {
    if (h == nullptr) continue;
    check_history(*h, report);
    if (!by_owner.emplace(h->owner(), h).second) {
      report.fail("ledger.duplicate_owner",
                  "two ledgers claim owner " + peer_str(h->owner()));
    }
  }

  Bytes sum_up = 0;
  Bytes sum_down = 0;
  // Sorted so a run with several violations reports them in a stable order.
  for (const auto& [owner, h] : util::sorted_view(by_owner)) {
    sum_up = util::saturating_add(sum_up, h->total_uploaded());
    sum_down = util::saturating_add(sum_down, h->total_downloaded());
    for (const auto& e : h->entries()) {
      auto it = by_owner.find(e.peer);
      if (it == by_owner.end()) continue;  // partner's ledger not supplied
      const bartercast::PrivateHistory& partner = *it->second;
      if (partner.downloaded_from(owner) != e.uploaded) {
        report.fail(
            "ledger.conservation",
            "edge " + edge_str(owner, e.peer) + ": uploader recorded " +
                std::to_string(e.uploaded) + " bytes sent, downloader has " +
                std::to_string(partner.downloaded_from(owner)) + " received");
      }
      if (partner.uploaded_to(owner) != e.downloaded) {
        report.fail(
            "ledger.conservation",
            "edge " + edge_str(e.peer, owner) + ": downloader recorded " +
                std::to_string(e.downloaded) + " bytes received, uploader has " +
                std::to_string(partner.uploaded_to(owner)) + " sent");
      }
    }
  }
  if (sum_up != sum_down) {
    report.fail("ledger.global_balance",
                "summed uploads (" + std::to_string(sum_up) +
                    ") != summed downloads (" + std::to_string(sum_down) + ")");
  }
  if (expected_transferred >= 0 && sum_up != expected_transferred) {
    report.fail("ledger.ground_truth",
                "ledgers account for " + std::to_string(sum_up) +
                    " uploaded bytes but the transport moved " +
                    std::to_string(expected_transferred));
  }
}

// --- flow graph / reputation ------------------------------------------------

void check_flow_graph(const graph::FlowGraph& graph, Report& report) {
  std::size_t edges = 0;
  for (PeerId node : graph.nodes()) {
    const auto out = graph.out_edges(node);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto& e = out[i];
      ++edges;
      if (e.cap <= 0) {
        report.fail("graph.capacity",
                    "edge " + edge_str(node, e.peer) + " has capacity " +
                        std::to_string(e.cap) + " (must be > 0)");
      }
      if (i > 0 && out[i - 1].peer >= e.peer) {
        report.fail("graph.sorted", "out-edges of " + std::to_string(node) +
                                        " not strictly ascending at " +
                                        edge_str(node, e.peer));
      }
      const auto mirror = graph.in_edges(e.peer);
      const bool mirrored =
          std::any_of(mirror.begin(), mirror.end(), [&](const auto& m) {
            return m.peer == node && m.cap == e.cap;
          });
      if (!mirrored) {
        report.fail("graph.mirror", "edge " + edge_str(node, e.peer) +
                                        " missing from the in-edge index");
      }
    }
    const auto in = graph.in_edges(node);
    for (std::size_t i = 0; i < in.size(); ++i) {
      const auto& e = in[i];
      if (i > 0 && in[i - 1].peer >= e.peer) {
        report.fail("graph.sorted", "in-edges of " + std::to_string(node) +
                                        " not strictly ascending at " +
                                        edge_str(e.peer, node));
      }
      if (graph.capacity(e.peer, node) != e.cap) {
        report.fail("graph.mirror",
                    "in-edge index lists " + edge_str(e.peer, node) +
                        " with capacity " + std::to_string(e.cap) +
                        " but the forward edge disagrees");
      }
    }
  }
  if (edges != graph.num_edges()) {
    report.fail("graph.edge_count",
                "num_edges()=" + std::to_string(graph.num_edges()) +
                    " but adjacency holds " + std::to_string(edges));
  }
}

void check_reputation_bounds(const bartercast::ReputationEngine& engine,
                             const graph::FlowGraph& graph, PeerId evaluator,
                             const std::vector<PeerId>& subjects,
                             Report& report) {
  for (PeerId subject : subjects) {
    if (subject == evaluator) continue;
    // Trivial-cut bound, both directions. For two-hop paths the min cut
    // upper-bounds the max flow exactly; for the ablation modes the bound
    // still holds (any s-t flow is limited by the cut around s and t).
    const std::pair<PeerId, PeerId> dirs[] = {{evaluator, subject},
                                              {subject, evaluator}};
    for (const auto& [s, t] : dirs) {
      const Bytes flow = engine.flow(graph, s, t);
      if (flow < 0) {
        report.fail("flow.negative", "maxflow" + edge_str(s, t) + " = " +
                                         std::to_string(flow));
        continue;
      }
      const Bytes cut =
          std::min(graph.out_capacity(s), graph.in_capacity(t));
      if (flow > cut) {
        report.fail("flow.min_cut",
                    "maxflow" + edge_str(s, t) + " = " + std::to_string(flow) +
                        " exceeds the trivial min cut " + std::to_string(cut));
      }
    }
    const double r = engine.reputation(graph, evaluator, subject);
    if (!std::isfinite(r) || r <= -1.0 || r >= 1.0) {
      report.fail("reputation.bounds",
                  "R_" + peer_str(evaluator) + "(" + peer_str(subject) +
                      ") = " + std::to_string(r) +
                      " outside the open interval (-1, 1)");
    }
  }
}

// --- simulator ---------------------------------------------------------------

void check_engine(const sim::Engine& engine, Report& report) {
  const auto next = engine.next_event_time();
  if (next.has_value() && *next < engine.now()) {
    report.fail("engine.monotonic",
                "event queue holds an event at t=" + std::to_string(*next) +
                    " which is before now()=" + std::to_string(engine.now()));
  }
}

// --- gossip messages ----------------------------------------------------------

void check_message(const bartercast::BarterCastMessage& message,
                   const bartercast::MessageSelection& selection,
                   Report& report) {
  if (message.sender == kInvalidPeer) {
    report.fail("message.sender", "message has an invalid sender id");
  }
  if (!std::isfinite(message.sent_at) || message.sent_at < 0.0) {
    report.fail("message.timestamp", "message from peer " +
                                         peer_str(message.sender) +
                                         " has timestamp " +
                                         std::to_string(message.sent_at));
  }
  const std::size_t limit = selection.nh + selection.nr;
  if (message.records.size() > limit) {
    report.fail("message.record_limit",
                "message from peer " + peer_str(message.sender) + " carries " +
                    std::to_string(message.records.size()) +
                    " records, above the Nh+Nr limit of " +
                    std::to_string(limit));
  }
  std::unordered_set<PeerId> others;
  for (const auto& rec : message.records) {
    if (rec.subject != message.sender) {
      report.fail("message.third_party",
                  "record " + edge_str(rec.subject, rec.other) +
                      " is not a claim by sender " + peer_str(message.sender));
    }
    if (rec.other == message.sender || rec.other == rec.subject) {
      report.fail("message.self_record",
                  "record " + edge_str(rec.subject, rec.other) +
                      " reports on the sender itself");
    }
    if (rec.other == kInvalidPeer) {
      report.fail("message.record_peer",
                  "record from peer " + peer_str(message.sender) +
                      " names an invalid counterparty");
    } else if (!others.insert(rec.other).second) {
      report.fail("message.duplicate",
                  "message from peer " + peer_str(message.sender) +
                      " carries two records about peer " + peer_str(rec.other));
    }
    if (rec.subject_to_other < 0 || rec.other_to_subject < 0) {
      report.fail("message.negative",
                  "record " + edge_str(rec.subject, rec.other) +
                      " claims negative bytes: up=" +
                      std::to_string(rec.subject_to_other) +
                      " down=" + std::to_string(rec.other_to_subject));
    }
  }
}

}  // namespace bc::check
