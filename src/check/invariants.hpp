// Runtime invariant validators (the bc::check subsystem).
//
// BarterCast's policies are only as trustworthy as the ledger arithmetic
// underneath them: a silently broken byte count corrupts the subjective
// graph, the Eq. 1 reputations, and every rank/ban decision downstream.
// The validators here re-derive the system's core conservation and bound
// properties from first principles and report any divergence:
//
//   * ledger conservation  -- every byte recorded as uploaded by i to j is
//     recorded by j as downloaded from i, and the global total matches the
//     ground-truth bytes moved by the transport (bt::Swarm).
//   * flow-graph consistency -- edge capacities strictly positive, in/out
//     indices mirrored, two-hop maxflow never above the trivial cuts, and
//     the arctan reputation strictly inside (-1, 1).
//   * simulator monotonicity -- the event queue never holds an event
//     scheduled before the engine's current time.
//   * gossip well-formedness -- messages respect the paper's Nh/Nr record
//     limits and only carry the sender's own, non-negative claims.
//
// Validators append to a Report instead of aborting so tests can assert on
// *which* invariant broke; fail-stop behaviour lives in audit.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "bartercast/history.hpp"
#include "bartercast/message.hpp"
#include "bartercast/reputation.hpp"
#include "graph/flow_graph.hpp"
#include "sim/engine.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::check {

/// One failed invariant: a stable dotted id plus human-readable specifics.
struct Violation {
  std::string invariant;  // e.g. "ledger.conservation"
  std::string detail;
};

/// Accumulates violations across validator calls.
class Report {
 public:
  void fail(std::string invariant, std::string detail);

  bool ok() const { return violations_.empty(); }
  std::size_t size() const { return violations_.size(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Whether a violation with exactly this invariant id was recorded.
  bool has(std::string_view invariant) const;

  /// Multi-line rendering for logs and assertion messages.
  std::string to_string() const;

 private:
  std::vector<Violation> violations_;
};

// --- ledger (bartercast/history) -----------------------------------------

/// Internal consistency of one private history: cached totals equal the sum
/// over entries, no entry about the owner itself or an invalid peer, and no
/// negative byte counter.
void check_history(const bartercast::PrivateHistory& history, Report& report);

/// Cross-peer conservation over a complete set of ledgers: i's record of
/// bytes uploaded to j must equal j's record of bytes downloaded from i (in
/// both directions), and the summed upload total must equal the summed
/// download total. When `expected_transferred` >= 0 the summed upload total
/// must additionally equal it -- pass the transport's ground truth (e.g. the
/// sum of bt::Swarm::total_transferred over all swarms).
void check_ledger_conservation(
    const std::vector<const bartercast::PrivateHistory*>& ledgers,
    Bytes expected_transferred, Report& report);

// --- flow graph / reputation (graph, bartercast/reputation) ---------------

/// Structural consistency of a subjective graph: strictly positive edge
/// capacities with mirrored in/out adjacency indices.
void check_flow_graph(const graph::FlowGraph& graph, Report& report);

/// Maxflow and Eq. 1 sanity for `evaluator` against each subject: the
/// engine's directed flow never exceeds the trivial cuts
/// min(out_capacity(source), in_capacity(sink)) -- for two-hop paths the
/// min cut upper-bounds the max flow -- and the arctan reputation lies
/// strictly inside (-1, 1).
void check_reputation_bounds(const bartercast::ReputationEngine& engine,
                             const graph::FlowGraph& graph, PeerId evaluator,
                             const std::vector<PeerId>& subjects,
                             Report& report);

// --- simulator (sim/engine) ------------------------------------------------

/// Event-queue monotonicity: no queued event may be earlier than now().
void check_engine(const sim::Engine& engine, Report& report);

// --- gossip messages (bartercast/message) ----------------------------------

/// Well-formedness under the paper's record limits: at most Nh + Nr records,
/// a valid sender and timestamp, every record being the sender's own claim
/// about a distinct other peer, and non-negative byte amounts.
void check_message(const bartercast::BarterCastMessage& message,
                   const bartercast::MessageSelection& selection,
                   Report& report);

}  // namespace bc::check
