#include "bittorrent/swarm.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/checked.hpp"

namespace bc::bt {

Swarm::Swarm(const Torrent& torrent, Rng rng)
    : torrent_(torrent), rng_(rng), availability_(torrent.num_pieces) {}

void Swarm::add_leecher(PeerId peer) {
  const auto [it, inserted] = members_.try_emplace(
      peer, Member{Bitfield(torrent_.num_pieces, false), {}, false});
  BC_ASSERT_MSG(inserted, "peer already in swarm");
  availability_.add_bitfield(it->second.have);
}

void Swarm::add_seeder(PeerId peer) {
  const auto [it, inserted] = members_.try_emplace(
      peer, Member{Bitfield(torrent_.num_pieces, true), {}, true});
  BC_ASSERT_MSG(inserted, "peer already in swarm");
  availability_.add_bitfield(it->second.have);
}

void Swarm::remove_peer(PeerId peer) {
  auto it = members_.find(peer);
  if (it == members_.end()) return;
  availability_.remove_bitfield(it->second.have);
  // Drop all links involving the peer. Where the peer was the uploader, the
  // downloader's in-flight piece is released back to the pool.
  // bc-analyze: allow(D1) -- erase-walk touches disjoint per-link state; the surviving set is order-independent
  for (auto link_it = links_.begin(); link_it != links_.end();) {
    const PeerId from = static_cast<PeerId>(link_it->first >> 32);
    const PeerId to = static_cast<PeerId>(link_it->first & 0xffffffffu);
    if (from == peer || to == peer) {
      if (link_it->second.piece >= 0 && to != peer) {
        member(to).in_flight.erase(link_it->second.piece);
      }
      link_it = links_.erase(link_it);
    } else {
      ++link_it;
    }
  }
  members_.erase(it);
}

std::vector<PeerId> Swarm::members() const {
  std::vector<PeerId> out;
  out.reserve(members_.size());
  // bc-analyze: allow(D1) -- ids are fully re-sorted on the next line
  for (const auto& [peer, _] : members_) out.push_back(peer);
  std::sort(out.begin(), out.end());  // deterministic iteration for callers
  return out;
}

Swarm::Member& Swarm::member(PeerId peer) {
  auto it = members_.find(peer);
  BC_ASSERT_MSG(it != members_.end(), "peer not in swarm");
  return it->second;
}

const Swarm::Member& Swarm::member(PeerId peer) const {
  auto it = members_.find(peer);
  BC_ASSERT_MSG(it != members_.end(), "peer not in swarm");
  return it->second;
}

const Bitfield& Swarm::pieces(PeerId peer) const { return member(peer).have; }

bool Swarm::is_complete(PeerId peer) const {
  return member(peer).have.complete();
}

double Swarm::progress(PeerId peer) const {
  const auto& m = member(peer);
  BC_ASSERT(m.have.size() > 0);
  return static_cast<double>(m.have.count()) /
         static_cast<double>(m.have.size());
}

bool Swarm::interested(PeerId downloader, PeerId uploader) const {
  return member(downloader).have.is_interesting(member(uploader).have);
}

void Swarm::fire_completion(PeerId peer) {
  auto& m = member(peer);
  if (m.completed_fired || !m.have.complete()) return;
  m.completed_fired = true;
  if (on_complete) on_complete(peer);
}

Bytes Swarm::transfer(PeerId uploader, PeerId downloader, Bytes budget) {
  BC_ASSERT(budget >= 0);
  BC_ASSERT(uploader != downloader);
  auto& down = member(downloader);
  const auto& up = member(uploader);
  if (down.have.complete()) return 0;

  auto& link = links_[link_key(uploader, downloader)];
  Bytes consumed = 0;
  while (budget > 0 && !down.have.complete()) {
    if (link.piece < 0) {
      PickRequest req;
      req.mine = &down.have;
      req.theirs = &up.have;
      req.availability = &availability_;
      req.in_flight = &down.in_flight;
      const std::optional<int> piece = pick_piece(req, rng_);
      if (!piece.has_value()) break;  // nothing useful on this link
      link.piece = *piece;
      link.piece_progress = 0;
      down.in_flight.insert(*piece);
    }
    const Bytes need = torrent_.piece_bytes(link.piece) - link.piece_progress;
    const Bytes chunk = std::min(need, budget);
    // Owner-local transfer counters: a wrap would corrupt the ledger
    // ground truth, so debug-assert on overflow instead of wrapping.
    link.piece_progress = util::checked_add(link.piece_progress, chunk);
    link.round_bytes = util::checked_add(link.round_bytes, chunk);
    consumed = util::checked_add(consumed, chunk);
    budget -= chunk;
    if (link.piece_progress >= torrent_.piece_bytes(link.piece)) {
      down.in_flight.erase(link.piece);
      const bool fresh = down.have.set(link.piece);
      BC_ASSERT(fresh);
      availability_.add_piece(link.piece);
      link.piece = -1;
      link.piece_progress = 0;
      if (down.have.complete()) {
        // Other links fetching for this peer are now moot; release them.
        // bc-analyze: allow(D1) -- per-link resets touch disjoint state; final state is order-independent
        for (auto& [key, other] : links_) {
          const PeerId to = static_cast<PeerId>(key & 0xffffffffu);
          if (to == downloader && other.piece >= 0) {
            down.in_flight.erase(other.piece);
            other.piece = -1;
            other.piece_progress = 0;
          }
        }
        fire_completion(downloader);
      }
    }
  }
  total_transferred_ = util::checked_add(total_transferred_, consumed);
  return consumed;
}

void Swarm::release_link(PeerId uploader, PeerId downloader) {
  auto it = links_.find(link_key(uploader, downloader));
  if (it == links_.end()) return;
  if (it->second.piece >= 0) {
    member(downloader).in_flight.erase(it->second.piece);
    it->second.piece = -1;
    it->second.piece_progress = 0;
  }
}

void Swarm::end_round() {
  // bc-analyze: allow(D1) -- per-link counter rollover; disjoint state, order-independent
  for (auto& [_, link] : links_) {
    link.last_round_bytes = link.round_bytes;
    link.round_bytes = 0;
  }
}

Bytes Swarm::last_round_bytes(PeerId from, PeerId to) const {
  auto it = links_.find(link_key(from, to));
  return it == links_.end() ? 0 : it->second.last_round_bytes;
}

bool Swarm::check_invariants() const {
  // Availability must equal the sum of member bitfields.
  std::vector<int> counts(static_cast<std::size_t>(torrent_.num_pieces), 0);
  // bc-analyze: allow(D1) -- commutative per-piece sum; order cannot change the counts
  for (const auto& [_, m] : members_) {
    for (int p = 0; p < m.have.size(); ++p) {
      if (m.have.get(p)) ++counts[static_cast<std::size_t>(p)];
    }
  }
  for (int p = 0; p < torrent_.num_pieces; ++p) {
    if (counts[static_cast<std::size_t>(p)] != availability_.count(p)) {
      return false;
    }
  }
  // bc-analyze: allow(D1) -- boolean all-of over links; a pure predicate, order cannot change the result
  for (const auto& [key, link] : links_) {
    const PeerId from = static_cast<PeerId>(key >> 32);
    const PeerId to = static_cast<PeerId>(key & 0xffffffffu);
    if (!members_.contains(from) || !members_.contains(to)) return false;
    if (link.piece >= 0) {
      const auto& down = members_.at(to);
      // An in-flight piece must be tracked and not yet owned.
      if (down.have.get(link.piece)) return false;
      if (!down.in_flight.contains(link.piece)) return false;
      if (link.piece_progress < 0 ||
          link.piece_progress >= torrent_.piece_bytes(link.piece)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace bc::bt
