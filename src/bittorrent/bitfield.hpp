// Piece possession bitfield.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace bc::bt {

class Bitfield {
 public:
  explicit Bitfield(int num_pieces, bool filled = false)
      : size_(num_pieces),
        count_(filled ? num_pieces : 0),
        words_(static_cast<std::size_t>((num_pieces + 63) / 64),
               filled ? ~std::uint64_t{0} : 0) {
    BC_ASSERT(num_pieces > 0);
    if (filled) trim();
  }

  int size() const { return size_; }
  int count() const { return count_; }
  bool complete() const { return count_ == size_; }
  bool empty() const { return count_ == 0; }

  bool get(int piece) const {
    BC_ASSERT(piece >= 0 && piece < size_);
    return (words_[static_cast<std::size_t>(piece) / 64] >>
            (static_cast<std::size_t>(piece) % 64)) &
           1;
  }

  /// Sets the piece; returns true if it was newly set.
  bool set(int piece) {
    BC_ASSERT(piece >= 0 && piece < size_);
    auto& word = words_[static_cast<std::size_t>(piece) / 64];
    const std::uint64_t mask = std::uint64_t{1}
                               << (static_cast<std::size_t>(piece) % 64);
    if (word & mask) return false;
    word |= mask;
    ++count_;
    return true;
  }

  /// True when the other peer has at least one piece this field lacks.
  bool is_interesting(const Bitfield& other) const {
    BC_ASSERT(other.size_ == size_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (other.words_[w] & ~words_[w]) return true;
    }
    return false;
  }

 private:
  void trim() {
    // Clear bits beyond size_ in the last word so complete()/count stay sane.
    const int tail = size_ % 64;
    if (tail != 0) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  int size_;
  int count_;
  std::vector<std::uint64_t> words_;
};

}  // namespace bc::bt
