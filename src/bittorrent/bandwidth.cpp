#include "bittorrent/bandwidth.hpp"

#include <unordered_map>

#include "util/assert.hpp"

namespace bc::bt {

std::vector<Rate> allocate_rates(
    std::span<const LinkRequest> links,
    const std::function<AccessProfile(PeerId)>& profile) {
  BC_ASSERT(profile != nullptr);
  std::vector<Rate> rates(links.size(), 0.0);
  if (links.empty()) return rates;

  // Pass 1: equal split of each uploader's uplink.
  std::unordered_map<PeerId, int> out_count;
  for (const auto& l : links) ++out_count[l.uploader];
  std::unordered_map<PeerId, Rate> in_sum;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto& l = links[i];
    const AccessProfile p = profile(l.uploader);
    BC_ASSERT(p.uplink >= 0.0);
    BC_ASSERT(out_count[l.uploader] > 0);
    rates[i] = p.uplink / out_count[l.uploader];
    in_sum[l.downloader] += rates[i];
  }

  // Pass 2: proportional scale-down at oversubscribed downlinks.
  std::unordered_map<PeerId, double> scale;
  // bc-analyze: allow(D1) -- writes one key-indexed entry per peer; no cross-iteration state, order-independent
  for (const auto& [peer, sum] : in_sum) {
    const AccessProfile p = profile(peer);
    BC_ASSERT(p.downlink >= 0.0);
    if (sum > p.downlink && sum > 0.0) {
      scale[peer] = p.downlink / sum;
    }
  }
  if (!scale.empty()) {
    for (std::size_t i = 0; i < links.size(); ++i) {
      auto it = scale.find(links[i].downloader);
      if (it != scale.end()) rates[i] *= it->second;
    }
  }
  return rates;
}

}  // namespace bc::bt
