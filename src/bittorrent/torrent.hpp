// Torrent metadata.
#pragma once

#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bt {

struct Torrent {
  SwarmId id = kInvalidSwarm;
  Bytes size = 0;
  Bytes piece_size = 0;
  int num_pieces = 0;

  static Torrent from_file(const trace::FileMeta& file) {
    BC_ASSERT(file.size > 0 && file.piece_size > 0);
    Torrent t;
    t.id = file.id;
    t.size = file.size;
    t.piece_size = file.piece_size;
    t.num_pieces = file.num_pieces();
    return t;
  }

  /// Size of piece `index` (the last piece may be short when the file size
  /// is not a multiple of the piece size).
  Bytes piece_bytes(int index) const {
    BC_ASSERT(index >= 0 && index < num_pieces);
    if (index + 1 < num_pieces) return piece_size;
    const Bytes tail = size - static_cast<Bytes>(num_pieces - 1) * piece_size;
    return tail > 0 ? tail : piece_size;
  }
};

}  // namespace bc::bt
