// Access-link bandwidth model (paper §5.1: ADSL peers, 3 MBps downlink and
// 512 KBps uplink).
//
// Rates are allocated in two passes over all simultaneously active directed
// links (across *all* swarms — cross-swarm uplink contention is exactly the
// effect that makes seeding costly and freeriding initially attractive,
// §4 "the consumed upload bandwidth cannot be used to do tit-for-tat in
// other downloads"):
//   1. every uploader splits its uplink equally over its active links;
//   2. every downloader whose incoming sum exceeds its downlink scales its
//      incoming rates down proportionally.
// Uplink slack left by downlink-capped receivers is not redistributed; with
// the paper's asymmetric ADSL profile the receiver cap almost never binds,
// so the approximation is benign (and it keeps allocation O(links)).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bt {

struct LinkRequest {
  PeerId uploader = kInvalidPeer;
  PeerId downloader = kInvalidPeer;
};

/// Per-peer access capacities.
struct AccessProfile {
  Rate uplink = 512.0 * 1024.0;          // 512 KiB/s
  Rate downlink = 3.0 * 1024.0 * 1024.0;  // 3 MiB/s
};

/// Returns one rate per request, in request order.
std::vector<Rate> allocate_rates(
    std::span<const LinkRequest> links,
    const std::function<AccessProfile(PeerId)>& profile);

}  // namespace bc::bt
