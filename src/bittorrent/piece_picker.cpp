#include "bittorrent/piece_picker.hpp"

#include <limits>

#include "util/assert.hpp"

namespace bc::bt {

void Availability::add_bitfield(const Bitfield& have) {
  BC_ASSERT(have.size() == num_pieces());
  for (int p = 0; p < have.size(); ++p) {
    if (have.get(p)) ++counts_[static_cast<std::size_t>(p)];
  }
}

void Availability::remove_bitfield(const Bitfield& have) {
  BC_ASSERT(have.size() == num_pieces());
  for (int p = 0; p < have.size(); ++p) {
    if (have.get(p)) {
      auto& c = counts_[static_cast<std::size_t>(p)];
      BC_ASSERT(c > 0);
      --c;
    }
  }
}

void Availability::add_piece(int piece) {
  BC_ASSERT(piece >= 0 && static_cast<std::size_t>(piece) < counts_.size());
  ++counts_[static_cast<std::size_t>(piece)];
}

std::optional<int> pick_piece(const PickRequest& req, Rng& rng) {
  BC_ASSERT(req.mine != nullptr && req.theirs != nullptr &&
            req.availability != nullptr && req.in_flight != nullptr);
  BC_ASSERT(req.mine->size() == req.theirs->size());

  const bool random_first = req.mine->count() < req.random_first_threshold;
  int best_rarity = std::numeric_limits<int>::max();
  int chosen = -1;
  // Reservoir-style tie-breaking: each equally rare candidate replaces the
  // current choice with probability 1/k, giving a uniform pick in one pass.
  int ties = 0;
  for (int p = 0; p < req.mine->size(); ++p) {
    if (req.mine->get(p) || !req.theirs->get(p)) continue;
    if (req.in_flight->contains(p)) continue;
    const int rarity = random_first ? 0 : req.availability->count(p);
    if (rarity < best_rarity) {
      best_rarity = rarity;
      chosen = p;
      ties = 1;
    } else if (rarity == best_rarity) {
      ++ties;
      if (rng.index(static_cast<std::size_t>(ties)) == 0) chosen = p;
    }
  }
  if (chosen < 0) return std::nullopt;
  return chosen;
}

}  // namespace bc::bt
