// Piece-level swarm state.
//
// One Swarm instance tracks, for one torrent: which peers participate and
// what pieces they hold, the swarm-wide piece availability (for
// rarest-first), and the per-directed-link transfer state (the piece
// currently in flight and the byte counters the tit-for-tat choker ranks
// on). Choking and bandwidth allocation are decided elsewhere (choker.hpp /
// bandwidth.hpp, orchestrated by the community simulator); the swarm applies
// the resulting byte movements and reports piece/file completions.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bittorrent/bitfield.hpp"
#include "bittorrent/piece_picker.hpp"
#include "bittorrent/torrent.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bc::bt {

class Swarm {
 public:
  Swarm(const Torrent& torrent, Rng rng);

  const Torrent& torrent() const { return torrent_; }

  /// Membership. A seeder joins holding all pieces; a leecher holds none.
  void add_leecher(PeerId peer);
  void add_seeder(PeerId peer);
  /// Removes the peer and releases all link state involving it.
  void remove_peer(PeerId peer);

  bool has_peer(PeerId peer) const { return members_.contains(peer); }
  std::vector<PeerId> members() const;
  std::size_t num_members() const { return members_.size(); }

  const Bitfield& pieces(PeerId peer) const;
  bool is_complete(PeerId peer) const;
  double progress(PeerId peer) const;
  const Availability& availability() const { return availability_; }

  /// Whether `downloader` currently wants data from `uploader` (the
  /// uploader holds a piece the downloader lacks). Both must be members.
  bool interested(PeerId downloader, PeerId uploader) const;

  /// Moves up to `budget` bytes from uploader to downloader, assigning
  /// pieces rarest-first as needed. Returns the bytes actually consumed
  /// (less than budget when the downloader completes or nothing useful is
  /// left). Fires on_complete at most once per peer.
  Bytes transfer(PeerId uploader, PeerId downloader, Bytes budget);

  /// Releases the in-flight piece of the (uploader, downloader) link, e.g.
  /// when the link gets choked. Progress on the piece is forgotten (the
  /// piece returns to the pool). No-op for unknown links.
  void release_link(PeerId uploader, PeerId downloader);

  /// Round bookkeeping for tit-for-tat: bytes moved per link this round.
  void end_round();
  Bytes last_round_bytes(PeerId from, PeerId to) const;

  /// Cumulative bytes moved by transfer() over the swarm's lifetime (across
  /// all links, surviving peer removal). The bc::check ledger-conservation
  /// audit compares this against the BarterCast private histories.
  Bytes total_transferred() const { return total_transferred_; }

  /// Called once when a peer completes the file (gains the last piece).
  std::function<void(PeerId)> on_complete;

  /// Internal consistency: availability matches bitfields; in-flight pieces
  /// are not owned; link endpoints are members.
  bool check_invariants() const;

 private:
  struct Member {
    Bitfield have;
    std::unordered_set<int> in_flight;  // pieces being fetched (any link)
    bool completed_fired = false;
  };

  struct Link {
    int piece = -1;         // piece in flight on this link, -1 if none
    Bytes piece_progress = 0;
    Bytes round_bytes = 0;
    Bytes last_round_bytes = 0;
  };

  static std::uint64_t link_key(PeerId from, PeerId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  Member& member(PeerId peer);
  const Member& member(PeerId peer) const;
  void fire_completion(PeerId peer);

  Torrent torrent_;
  Rng rng_;
  Availability availability_;
  std::unordered_map<PeerId, Member> members_;
  std::unordered_map<std::uint64_t, Link> links_;
  Bytes total_transferred_ = 0;
};

}  // namespace bc::bt
