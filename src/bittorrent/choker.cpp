#include "bittorrent/choker.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace bc::bt {

std::vector<PeerId> pick_regular_unchokes(
    std::span<const UnchokeCandidate> candidates, int slots,
    const bartercast::ReputationPolicy& policy) {
  BC_OBS_SCOPE("choker.pick_regular");
  static obs::Counter& policy_exclusions =
      obs::Registry::instance().counter("choker.policy_exclusions");
  std::vector<const UnchokeCandidate*> eligible;
  eligible.reserve(candidates.size());
  for (const auto& c : candidates) {
    if (!c.interested) continue;
    if (!policy.allows_slot(c.reputation)) {
      // Interested but shut out by the reputation policy: the decision the
      // ban experiments (Figure 2b/3) turn on, so it gets its own counter.
      policy_exclusions.inc();
      continue;
    }
    eligible.push_back(&c);
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const UnchokeCandidate* a, const UnchokeCandidate* b) {
              // </> instead of != keeps the exact-tie branch explicit: equal
              // rates fall through to the peer-id total order.
              if (a->rate > b->rate) return true;
              if (a->rate < b->rate) return false;
              return a->peer < b->peer;
            });
  std::vector<PeerId> out;
  const auto want = static_cast<std::size_t>(std::max(slots, 0));
  out.reserve(std::min(want, eligible.size()));
  for (std::size_t i = 0; i < eligible.size() && i < want; ++i) {
    out.push_back(eligible[i]->peer);
  }
  return out;
}

PeerId OptimisticRotator::pick(std::span<const UnchokeCandidate> candidates,
                               std::span<const PeerId> regular,
                               const bartercast::ReputationPolicy& policy,
                               Seconds now) {
  BC_OBS_SCOPE("choker.optimistic_pick");
  const UnchokeCandidate* best = nullptr;
  Seconds best_served = 0.0;
  auto served_at = [&](PeerId p) {
    auto it = last_served_.find(p);
    // Never-served peers sort before everything else.
    return it == last_served_.end() ? -1.0 : it->second;
  };
  for (const auto& c : candidates) {
    if (!c.interested || !policy.allows_slot(c.reputation)) continue;
    if (std::find(regular.begin(), regular.end(), c.peer) != regular.end()) {
      continue;
    }
    const Seconds served = served_at(c.peer);
    bool better = false;
    if (best == nullptr) {
      better = true;
    } else if (policy.ranked_optimistic()) {
      // Rank policy: reputation first; round-robin age breaks ties so equal
      // (e.g. all-zero) reputations still rotate fairly. </> comparisons
      // keep every exact-tie branch explicit.
      if (c.reputation > best->reputation) {
        better = true;
      } else if (c.reputation < best->reputation) {
        better = false;
      } else if (served < best_served) {
        better = true;
      } else if (served > best_served) {
        better = false;
      } else {
        better = c.peer < best->peer;
      }
    } else {
      if (served < best_served) {
        better = true;
      } else if (served > best_served) {
        better = false;
      } else {
        better = c.peer < best->peer;
      }
    }
    if (better) {
      best = &c;
      best_served = served;
    }
  }
  if (best == nullptr) return kInvalidPeer;
  last_served_[best->peer] = now;
  return best->peer;
}

}  // namespace bc::bt
