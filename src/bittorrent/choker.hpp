// Choking: upload-slot assignment (paper §4.1-4.2).
//
// Regular slots implement tit-for-tat: a leecher unchokes the interested
// peers that currently provide it the highest download rate; a seeder
// unchokes the peers with the highest download rate from it. One extra slot
// is assigned by optimistic unchoking, normally "via a 30 seconds
// round-robin shift over all the interested peers".
//
// The reputation policies hook in exactly as §4.2 describes:
//  * ban: candidates below the threshold are excluded from *all* slots;
//  * rank: the optimistic slot goes to the interested candidate with the
//    highest reputation instead of the round-robin choice.
//
// Slot selection is pure (free function) and the round-robin state is a
// small separate object, so both are directly unit-testable.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "bartercast/policy.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::bt {

struct UnchokeCandidate {
  PeerId peer = kInvalidPeer;
  /// Tit-for-tat metric: for a leecher the rate received *from* this peer
  /// last period; for a seeder the rate sent *to* it.
  Rate rate = 0.0;
  /// The chooser's subjective reputation of this peer (Equation 1).
  double reputation = 0.0;
  /// Whether this peer currently wants data from the chooser.
  bool interested = false;
};

/// Picks up to `slots` regular unchokes: interested candidates permitted by
/// the policy, by decreasing rate; ties favour the lower peer id (stable and
/// deterministic).
std::vector<PeerId> pick_regular_unchokes(
    std::span<const UnchokeCandidate> candidates, int slots,
    const bartercast::ReputationPolicy& policy);

/// Round-robin optimistic unchoke state for one chooser. The "shift over all
/// the interested peers" is realized by always picking the interested,
/// policy-permitted candidate served longest ago (never-served first).
class OptimisticRotator {
 public:
  /// Picks the optimistic unchoke among candidates not already in
  /// `regular`. Under the rank policy the choice is by decreasing
  /// reputation; otherwise round-robin. Returns kInvalidPeer when no
  /// candidate qualifies. `now` timestamps the choice for future rotation.
  PeerId pick(std::span<const UnchokeCandidate> candidates,
              std::span<const PeerId> regular,
              const bartercast::ReputationPolicy& policy, Seconds now);

 private:
  std::unordered_map<PeerId, Seconds> last_served_;
};

}  // namespace bc::bt
