// Rarest-first piece selection (paper §5.1: "including ... rarest-first
// piece picking").
//
// The picker chooses, for a downloader, the next piece to fetch from a given
// uploader: among the pieces the uploader has, the downloader lacks, and
// that are not already being fetched from someone else, pick the one with
// the lowest swarm-wide availability. Ties break uniformly at random (the
// standard BitTorrent behaviour that spreads replicas). A short random-first
// phase bootstraps brand-new downloaders, as real clients do.
#pragma once

#include <optional>
#include <span>
#include <unordered_set>

#include "bittorrent/bitfield.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bc::bt {

/// Swarm-wide per-piece availability counter.
class Availability {
 public:
  explicit Availability(int num_pieces) : counts_(static_cast<std::size_t>(num_pieces), 0) {
    BC_ASSERT(num_pieces > 0);
  }

  void add_bitfield(const Bitfield& have);
  void remove_bitfield(const Bitfield& have);
  void add_piece(int piece);

  int count(int piece) const {
    BC_ASSERT(piece >= 0 && static_cast<std::size_t>(piece) < counts_.size());
    return counts_[static_cast<std::size_t>(piece)];
  }
  int num_pieces() const { return static_cast<int>(counts_.size()); }

 private:
  std::vector<int> counts_;
};

struct PickRequest {
  const Bitfield* mine = nullptr;    // downloader's pieces
  const Bitfield* theirs = nullptr;  // uploader's pieces
  const Availability* availability = nullptr;
  /// Pieces the downloader is already fetching on other connections.
  const std::unordered_set<int>* in_flight = nullptr;
  /// Below this piece count the downloader picks uniformly at random
  /// (random-first bootstrap). 4 is the conventional value.
  int random_first_threshold = 4;
};

/// Returns the chosen piece index, or nullopt when the uploader has nothing
/// useful (downloader not interested modulo in-flight pieces).
std::optional<int> pick_piece(const PickRequest& request, Rng& rng);

}  // namespace bc::bt
