#include "net/overlay.hpp"

#include <utility>

#include "util/assert.hpp"

namespace bc::net {

Overlay::Overlay(sim::Engine& engine, Rng rng, LatencyModel latency)
    : engine_(engine), rng_(rng), latency_(latency) {
  BC_ASSERT(latency_.min >= 0.0 && latency_.max >= latency_.min);
}

void Overlay::register_peer(PeerId id, Handler handler, bool connectable) {
  BC_ASSERT(handler != nullptr);
  const auto [_, inserted] =
      peers_.emplace(id, PeerState{std::move(handler), connectable, false});
  BC_ASSERT_MSG(inserted, "peer registered twice");
}

bool Overlay::is_registered(PeerId id) const { return peers_.contains(id); }

void Overlay::set_online(PeerId id, bool online) {
  auto it = peers_.find(id);
  BC_ASSERT_MSG(it != peers_.end(), "unknown peer");
  it->second.online = online;
}

bool Overlay::online(PeerId id) const {
  auto it = peers_.find(id);
  return it != peers_.end() && it->second.online;
}

bool Overlay::connectable(PeerId id) const {
  auto it = peers_.find(id);
  return it != peers_.end() && it->second.connectable;
}

bool Overlay::can_communicate(PeerId a, PeerId b) const {
  if (a == b) return false;
  return online(a) && online(b) && (connectable(a) || connectable(b));
}

bool Overlay::send(PeerId from, PeerId to,
                   std::unique_ptr<Payload> message) {
  BC_ASSERT(message != nullptr);
  ++stats_.sent;
  if (!online(from)) {
    ++stats_.dropped_sender_offline;
    return false;
  }
  if (!online(to)) {
    ++stats_.dropped_receiver_offline;
    return false;
  }
  if (!can_communicate(from, to)) {
    ++stats_.dropped_unconnectable;
    return false;
  }
  const Seconds delay = rng_.uniform(latency_.min, latency_.max);
  // Shared_ptr so the lambda stays copyable (std::function requirement).
  std::shared_ptr<Payload> payload = std::move(message);
  engine_.schedule_after(delay, [this, from, to, payload] {
    auto it = peers_.find(to);
    if (it == peers_.end() || !it->second.online) {
      ++stats_.dropped_receiver_offline;
      return;
    }
    ++stats_.delivered;
    it->second.handler(from, *payload);
  });
  return true;
}

}  // namespace bc::net
