// Overlay message layer.
//
// Sits on top of the discrete-event engine and models the only network
// properties the paper's evaluation depends on: per-message latency, peer
// online/offline churn (from the trace) and connectability (NAT): a pair of
// peers can communicate only if both are online and at least one of them is
// connectable.
//
// Payloads are polymorphic (Payload subclass per protocol message); the
// receiver's handler downcasts. This keeps the overlay independent of the
// protocols layered on it (gossip, BarterCast).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "sim/engine.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bc::net {

/// Base class for protocol messages carried by the overlay.
class Payload {
 public:
  virtual ~Payload() = default;
};

/// Uniform random latency in [min, max). Deterministic given the overlay rng.
struct LatencyModel {
  Seconds min = 0.02;
  Seconds max = 0.25;
};

class Overlay {
 public:
  using Handler =
      std::function<void(PeerId from, const Payload& message)>;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped_sender_offline = 0;
    std::uint64_t dropped_receiver_offline = 0;
    std::uint64_t dropped_unconnectable = 0;
  };

  Overlay(sim::Engine& engine, Rng rng, LatencyModel latency = {});

  /// Registers a peer. `connectable` models NAT/firewall reachability and is
  /// fixed for the lifetime of the peer (as in the trace schema). Peers
  /// start offline.
  void register_peer(PeerId id, Handler handler, bool connectable);

  bool is_registered(PeerId id) const;
  void set_online(PeerId id, bool online);
  bool online(PeerId id) const;
  bool connectable(PeerId id) const;

  /// Two peers can exchange messages iff both are online and at least one
  /// is connectable (the connectable one accepts the connection).
  bool can_communicate(PeerId a, PeerId b) const;

  /// Sends a message; it is delivered after the latency delay if the
  /// receiver is still online at delivery time (otherwise dropped). Returns
  /// true if the message left the sender (i.e. the pair could communicate).
  bool send(PeerId from, PeerId to, std::unique_ptr<Payload> message);

  const Stats& stats() const { return stats_; }
  sim::Engine& engine() { return engine_; }

 private:
  struct PeerState {
    Handler handler;
    bool connectable = false;
    bool online = false;
  };

  sim::Engine& engine_;
  Rng rng_;
  LatencyModel latency_;
  std::unordered_map<PeerId, PeerState> peers_;
  Stats stats_;
};

}  // namespace bc::net
