#include "sim/engine.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace bc::sim {

Engine::Engine() {
  Logger::instance().set_time_provider([this] { return now_; }, this);
}

Engine::~Engine() {
  Logger::instance().clear_time_provider(this);
}

EventId Engine::schedule_at(Seconds t, EventFn fn) {
  BC_ASSERT_MSG(t >= now_, "cannot schedule events in the past");
  BC_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  payloads_.emplace(id, std::move(fn));
  queue_.push(Event{t, id});
  return id;
}

EventId Engine::schedule_after(Seconds dt, EventFn fn) {
  BC_ASSERT(dt >= 0.0);
  return schedule_at(now_ + dt, std::move(fn));
}

EventId Engine::schedule_periodic(Seconds start, Seconds period, EventFn fn) {
  BC_ASSERT(period > 0.0);
  BC_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  periodics_.emplace(id, Periodic{period, std::move(fn)});
  // The heap entry reuses the same id on every repetition, so one cancel()
  // stops the whole series.
  payloads_.emplace(id, EventFn{});  // marker; real fn lives in periodics_
  queue_.push(Event{start, id});
  return id;
}

void Engine::cancel(EventId id) {
  payloads_.erase(id);
  periodics_.erase(id);
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto payload = payloads_.find(ev.id);
    if (payload == payloads_.end()) continue;  // cancelled
    BC_ASSERT(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    BC_OBS_SCOPE("sim.dispatch");
    static obs::Counter& dispatched =
        obs::Registry::instance().counter("sim.events_dispatched");
    dispatched.inc();
    const bool is_periodic = periodics_.contains(ev.id);
    if (auto& tracer = obs::Tracer::instance(); tracer.enabled()) {
      tracer.instant(is_periodic ? "periodic" : "event", "engine", now_,
                     {{"id", std::to_string(ev.id)}});
    }
    if (auto periodic = periodics_.find(ev.id); periodic != periodics_.end()) {
      // Re-arm before running so the callback may cancel itself.
      queue_.push(Event{now_ + periodic->second.period, ev.id});
      // Copy: the callback may cancel(id) and invalidate the map entry.
      EventFn fn = periodic->second.fn;
      fn();
    } else {
      EventFn fn = std::move(payload->second);
      payloads_.erase(payload);
      fn();
    }
    return true;
  }
  return false;
}

void Engine::run_until(Seconds t_end) {
  BC_ASSERT(t_end >= now_);
  while (!queue_.empty()) {
    // Peek through cancelled entries without executing.
    const Event ev = queue_.top();
    if (!payloads_.contains(ev.id)) {
      queue_.pop();
      continue;
    }
    if (ev.time > t_end) break;
    step();
  }
  now_ = t_end;
}

void Engine::run() {
  while (step()) {
  }
}

std::size_t Engine::pending_events() const {
  // Upper bound only if cancellations are pending; exact after they drain.
  return payloads_.size();
}

std::optional<Seconds> Engine::next_event_time() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().time;
}

}  // namespace bc::sim
