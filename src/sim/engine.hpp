// Discrete-event simulation engine.
//
// Single-threaded by design (see DESIGN.md): one Engine owns one simulated
// world. Events at equal timestamps run in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes runs bit-identical
// for a given scenario seed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace bc::sim {

/// Handle to a scheduled (or periodic) event, usable for cancellation.
using EventId = std::uint64_t;

class Engine {
 public:
  using EventFn = std::function<void()>;

  /// Installs this engine's clock as the logger's sim-time provider for
  /// the engine's lifetime (the most recently constructed engine wins),
  /// so BC_LOG lines carry a [t=...] prefix correlating with obs traces.
  Engine();
  ~Engine();

  // Callbacks and the logger provider capture `this`.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  /// Current simulation time. Starts at 0.
  Seconds now() const { return now_; }

  /// Number of events executed so far (skipped/cancelled events excluded).
  std::uint64_t events_processed() const { return processed_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellable id.
  EventId schedule_at(Seconds t, EventFn fn);

  /// Schedules `fn` after a delay `dt` (>= 0).
  EventId schedule_after(Seconds dt, EventFn fn);

  /// Schedules `fn` every `period` seconds, first firing at `start`.
  /// The callback keeps firing until the returned id is cancelled or the
  /// run ends. `period` must be > 0.
  EventId schedule_periodic(Seconds start, Seconds period, EventFn fn);

  /// Cancels a pending or periodic event. Safe to call redundantly, also
  /// from inside event callbacks (including the event's own callback, in
  /// which case a periodic event stops repeating).
  void cancel(EventId id);

  /// Executes the next pending event, if any. Returns false when the queue
  /// has drained.
  bool step();

  /// Runs until the queue drains or simulation time would exceed `t_end`.
  /// Events scheduled exactly at `t_end` still run. Afterwards now()==t_end
  /// unless the queue drained earlier.
  void run_until(Seconds t_end);

  /// Drains the queue completely.
  void run();

  std::size_t pending_events() const;

  /// Timestamp of the earliest queued heap entry (cancelled entries
  /// included), or nullopt when the queue is empty. Never earlier than
  /// now(): schedule_at refuses events in the past, which the bc::check
  /// monotonicity audit re-verifies through this accessor.
  std::optional<Seconds> next_event_time() const;

 private:
  struct Event {
    Seconds time;
    EventId id;
    // Ordering for the min-heap: earliest time first, then lowest id, so
    // same-time events run in the order they were scheduled. </> instead
    // of != keeps the exact-tie branch explicit.
    bool operator>(const Event& other) const {
      if (time > other.time) return true;
      if (time < other.time) return false;
      return id > other.id;
    }
  };

  struct Periodic {
    Seconds period;
    EventFn fn;
  };

  EventId next_id_ = 1;
  Seconds now_ = 0.0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Payloads live outside the heap so cancellation frees them promptly.
  std::unordered_map<EventId, EventFn> payloads_;
  std::unordered_map<EventId, Periodic> periodics_;
};

}  // namespace bc::sim
