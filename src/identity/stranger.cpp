#include "identity/stranger.hpp"

#include "util/assert.hpp"

namespace bc::identity {

StrangerPolicy StrangerPolicy::fixed(double penalty) {
  BC_ASSERT_MSG(penalty <= 0.0 && penalty >= -1.0,
                "a stranger penalty is a reputation value in [-1, 0]");
  return StrangerPolicy(StrangerPolicyKind::kFixed, penalty);
}

bool StrangerPolicy::is_stranger(const bartercast::ReputationEngine& engine,
                                 const graph::FlowGraph& graph,
                                 PeerId evaluator, PeerId subject) {
  if (evaluator == subject) return false;
  return engine.flow(graph, subject, evaluator) == 0 &&
         engine.flow(graph, evaluator, subject) == 0;
}

double StrangerPolicy::effective_reputation(
    const bartercast::ReputationEngine& engine, const graph::FlowGraph& graph,
    PeerId evaluator, PeerId subject,
    const AdaptiveStrangerEstimator& estimator) const {
  if (!is_stranger(engine, graph, evaluator, subject)) {
    return engine.reputation(graph, evaluator, subject);
  }
  switch (kind_) {
    case StrangerPolicyKind::kNeutral:
      return 0.0;
    case StrangerPolicyKind::kFixed:
      return penalty_;
    case StrangerPolicyKind::kAdaptive:
      return estimator.value();
  }
  return 0.0;
}

}  // namespace bc::identity
