// Stranger policies (paper §3.5, after Feldman et al.).
//
// When identities are cheap, "newcomers are undistinguishable from
// whitewashers and the only approach is to impose a penalty on all
// newcomers. This penalty can be static or it can be determined dynamically
// using an adaptive stranger policy."
//
// A stranger, from an evaluator's viewpoint, is a peer about which its
// subjective graph carries no flow in either direction. The policy assigns
// such peers an *effective* reputation:
//   kNeutral  — 0, i.e. BarterCast's default (no penalty);
//   kFixed    — a configured penalty value;
//   kAdaptive — the running estimate of what strangers historically turned
//               out to deserve (EWMA over realized first impressions).
#pragma once

#include "bartercast/reputation.hpp"
#include "graph/flow_graph.hpp"
#include "util/assert.hpp"
#include "util/ids.hpp"

namespace bc::identity {

enum class StrangerPolicyKind { kNeutral, kFixed, kAdaptive };

/// EWMA estimator of the reputation strangers end up earning: each time a
/// former stranger's true colours become visible (its first nonzero
/// reputation at this evaluator), the realized value is folded in.
class AdaptiveStrangerEstimator {
 public:
  explicit AdaptiveStrangerEstimator(double smoothing = 0.1,
                                     double initial = 0.0)
      : alpha_(smoothing), value_(initial) {
    BC_ASSERT(smoothing > 0.0 && smoothing <= 1.0);
  }

  void observe(double realized_reputation) {
    value_ = (1.0 - alpha_) * value_ + alpha_ * realized_reputation;
    ++observations_;
  }

  double value() const { return value_; }
  std::size_t observations() const { return observations_; }

 private:
  double alpha_;
  double value_;
  std::size_t observations_ = 0;
};

class StrangerPolicy {
 public:
  static StrangerPolicy neutral() {
    return StrangerPolicy(StrangerPolicyKind::kNeutral, 0.0);
  }
  /// Fixed penalty in [-1, 0].
  static StrangerPolicy fixed(double penalty);
  static StrangerPolicy adaptive() {
    return StrangerPolicy(StrangerPolicyKind::kAdaptive, 0.0);
  }

  StrangerPolicyKind kind() const { return kind_; }
  double fixed_penalty() const { return penalty_; }

  /// Whether `subject` is a stranger to `evaluator` on this graph: no flow
  /// toward or from the evaluator under the engine's maxflow mode.
  static bool is_stranger(const bartercast::ReputationEngine& engine,
                          const graph::FlowGraph& graph, PeerId evaluator,
                          PeerId subject);

  /// The reputation the choker should act on: the real subjective value for
  /// known peers, the stranger value for strangers.
  double effective_reputation(const bartercast::ReputationEngine& engine,
                              const graph::FlowGraph& graph, PeerId evaluator,
                              PeerId subject,
                              const AdaptiveStrangerEstimator& estimator) const;

 private:
  StrangerPolicy(StrangerPolicyKind kind, double penalty)
      : kind_(kind), penalty_(penalty) {}

  StrangerPolicyKind kind_;
  double penalty_;
};

}  // namespace bc::identity
