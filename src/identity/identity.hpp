// Identity management and whitewashing (paper §3.5).
//
// "A common concern in reputation systems is whitewashing, i.e., users can
// get rid of a negative reputation easily by assuming a new (cheap)
// identity." The paper's deployed system relies on a machine-dependent
// permanent identifier; assessing policies that do not depend on strong
// identities is left as future work — which this module implements.
//
// The manager separates *users* (the stable actor behind a client) from
// *peer identities* (what the protocol sees). Under the kPermanent scheme a
// user keeps one identity for life; under kCheap a user may retire its
// identity and register a fresh one at any time, which is exactly the
// whitewashing move.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/ids.hpp"

namespace bc::identity {

/// Stable identifier of the human/machine behind a client.
using UserId = std::uint32_t;

enum class IdentityScheme {
  /// Identities are one-to-one with users (e.g. tied to hardware); a user
  /// can never shed its history. This is what deployed Tribler assumes.
  kPermanent,
  /// Identities are free to mint; whitewashing is possible.
  kCheap,
};

class IdentityManager {
 public:
  explicit IdentityManager(IdentityScheme scheme) : scheme_(scheme) {}

  IdentityScheme scheme() const { return scheme_; }

  /// Registers a new user and returns its first peer identity.
  PeerId register_user(UserId user);

  /// The user's current peer identity.
  PeerId current_identity(UserId user) const;

  /// The user behind an identity (including retired identities), or
  /// std::nullopt for identities this manager never issued.
  std::optional<UserId> owner_of(PeerId identity) const;

  /// Whether the identity is the *current* one of some user.
  bool is_active(PeerId identity) const;

  /// Drops the user's current identity and issues a fresh one. Only
  /// possible under the kCheap scheme (asserts otherwise — a caller must
  /// model "considerable programming skill" barriers explicitly, not by
  /// accident). Returns the new identity.
  PeerId whitewash(UserId user);

  /// Number of identities the user has burned through (1 = never washed).
  std::size_t identity_count(UserId user) const;

  std::size_t num_users() const { return users_.size(); }
  std::size_t num_identities_issued() const { return owners_.size(); }

 private:
  struct UserState {
    PeerId current = kInvalidPeer;
    std::size_t identities = 0;
  };

  PeerId mint(UserId user);

  IdentityScheme scheme_;
  PeerId next_identity_ = 0;
  std::unordered_map<UserId, UserState> users_;
  std::unordered_map<PeerId, UserId> owners_;
};

}  // namespace bc::identity
