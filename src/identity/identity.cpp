#include "identity/identity.hpp"

#include "util/assert.hpp"

namespace bc::identity {

PeerId IdentityManager::mint(UserId user) {
  const PeerId id = next_identity_++;
  owners_.emplace(id, user);
  return id;
}

PeerId IdentityManager::register_user(UserId user) {
  auto [it, inserted] = users_.try_emplace(user);
  BC_ASSERT_MSG(inserted, "user registered twice");
  it->second.current = mint(user);
  it->second.identities = 1;
  return it->second.current;
}

PeerId IdentityManager::current_identity(UserId user) const {
  auto it = users_.find(user);
  BC_ASSERT_MSG(it != users_.end(), "unknown user");
  return it->second.current;
}

std::optional<UserId> IdentityManager::owner_of(PeerId identity) const {
  auto it = owners_.find(identity);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

bool IdentityManager::is_active(PeerId identity) const {
  auto it = owners_.find(identity);
  if (it == owners_.end()) return false;
  return users_.at(it->second).current == identity;
}

PeerId IdentityManager::whitewash(UserId user) {
  BC_ASSERT_MSG(scheme_ == IdentityScheme::kCheap,
                "whitewashing requires cheap identities");
  auto it = users_.find(user);
  BC_ASSERT_MSG(it != users_.end(), "unknown user");
  it->second.current = mint(user);
  ++it->second.identities;
  return it->second.current;
}

std::size_t IdentityManager::identity_count(UserId user) const {
  auto it = users_.find(user);
  BC_ASSERT_MSG(it != users_.end(), "unknown user");
  return it->second.identities;
}

}  // namespace bc::identity
