#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bc::trace {

namespace {

std::vector<Session> generate_sessions(Rng& rng, const GeneratorConfig& cfg) {
  std::vector<Session> sessions;
  const double avail =
      rng.uniform(cfg.availability_min, cfg.availability_max);
  const Seconds mean_on = std::max(avail * cfg.churn_cycle, 10.0 * kMinute);
  const Seconds mean_off =
      std::max((1.0 - avail) * cfg.churn_cycle, 5.0 * kMinute);
  // Random phase: roughly half the peers start online.
  Seconds t = rng.chance(avail) ? 0.0 : rng.exponential(mean_off);
  while (t < cfg.duration) {
    Seconds on = rng.exponential(mean_on);
    on = std::max(on, 10.0 * kMinute);  // no sub-10-minute flaps
    Session s{t, std::min(t + on, cfg.duration)};
    if (s.end > s.start) sessions.push_back(s);
    t = s.end + std::max(rng.exponential(mean_off), 5.0 * kMinute);
  }
  return sessions;
}

}  // namespace

Trace generate(const GeneratorConfig& cfg) {
  BC_ASSERT(cfg.num_peers > 0 && cfg.num_swarms > 0);
  BC_ASSERT(cfg.duration > 0.0);
  BC_ASSERT(cfg.file_size_min > 0 && cfg.file_size_max >= cfg.file_size_min);
  BC_ASSERT(cfg.request_window > 0.0 && cfg.request_window <= 1.0);

  Rng rng(cfg.seed);
  Trace tr;
  tr.duration = cfg.duration;

  // Files: log-uniform sizes.
  const double log_lo = std::log(static_cast<double>(cfg.file_size_min));
  const double log_hi = std::log(static_cast<double>(cfg.file_size_max));
  for (std::size_t i = 0; i < cfg.num_swarms; ++i) {
    FileMeta f;
    f.id = static_cast<SwarmId>(i);
    f.size = static_cast<Bytes>(std::exp(rng.uniform(log_lo, log_hi)));
    f.piece_size = std::min(cfg.piece_size, f.size);
    // Round size up to a whole number of pieces; keeps piece accounting
    // trivial everywhere downstream.
    f.size = static_cast<Bytes>(f.num_pieces()) * f.piece_size;
    tr.files.push_back(f);
  }

  // Peers: connectability and session schedules.
  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    PeerProfile p;
    p.id = static_cast<PeerId>(i);
    p.connectable = rng.chance(cfg.connectable_fraction);
    p.sessions = generate_sessions(rng, cfg);
    tr.peers.push_back(std::move(p));
  }
  // Guarantee at least one connectable peer, otherwise nobody can talk.
  if (std::none_of(tr.peers.begin(), tr.peers.end(),
                   [](const PeerProfile& p) { return p.connectable; })) {
    tr.peers.front().connectable = true;
  }

  // Releases: each file goes live at a random time in the early window;
  // its requests flash-crowd in with exponentially decaying delay.
  const Seconds window = cfg.duration * cfg.request_window;
  std::vector<Seconds> release(cfg.num_swarms);
  for (auto& t : release) t = rng.uniform(0.0, window);

  for (const auto& peer : tr.peers) {
    const std::size_t want = std::min(
        cfg.num_swarms,
        static_cast<std::size_t>(rng.uniform_int(
            static_cast<std::int64_t>(cfg.requests_per_peer_min),
            static_cast<std::int64_t>(cfg.requests_per_peer_max))));
    std::set<SwarmId> chosen;
    std::size_t attempts = 0;
    while (chosen.size() < want && attempts < 20 * cfg.num_swarms) {
      ++attempts;
      chosen.insert(
          static_cast<SwarmId>(rng.zipf(cfg.num_swarms, cfg.popularity_skew)));
    }
    for (SwarmId swarm : chosen) {
      SwarmRequest r;
      r.peer = peer.id;
      r.swarm = swarm;
      r.at = std::min(release[swarm] + rng.exponential(cfg.request_decay),
                      cfg.duration * 0.98);
      tr.requests.push_back(r);
    }
  }
  std::sort(tr.requests.begin(), tr.requests.end(),
            [](const SwarmRequest& a, const SwarmRequest& b) {
              // </> instead of != keeps the exact-tie branch explicit:
              // equal times fall through to the (peer, swarm) total order.
              if (a.at < b.at) return true;
              if (a.at > b.at) return false;
              if (a.peer != b.peer) return a.peer < b.peer;
              return a.swarm < b.swarm;
            });

  BC_ASSERT_MSG(tr.validate().empty(), "generator produced an invalid trace");
  return tr;
}

}  // namespace bc::trace
