// Community trace schema.
//
// The paper's evaluation replays traces scraped from the filelist.org
// private tracker: per-peer uptimes/downtimes, connectability, and
// file-requests, plus per-file metadata. We reproduce exactly that schema;
// `generator.hpp` synthesizes statistically plausible instances (the
// substitution documented in DESIGN.md §2) and `csv.hpp` can round-trip
// traces so a real scrape could be dropped in unchanged.
#pragma once

#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::trace {

/// One shared file (one swarm).
struct FileMeta {
  SwarmId id = kInvalidSwarm;
  Bytes size = 0;
  Bytes piece_size = 0;

  int num_pieces() const {
    BC_ASSERT(piece_size > 0);
    // bc-analyze: allow(B1) -- piece *count*, not a ledger amount: bounded by size/piece_size, far below 2^31 for any valid trace (validate() rejects piece_size <= 0)
    return static_cast<int>((size + piece_size - 1) / piece_size);
  }
  friend bool operator==(const FileMeta&, const FileMeta&) = default;
};

/// A continuous online interval [start, end).
struct Session {
  Seconds start = 0.0;
  Seconds end = 0.0;
  friend bool operator==(const Session&, const Session&) = default;
};

/// Static per-peer data plus the peer's uptime schedule.
struct PeerProfile {
  PeerId id = kInvalidPeer;
  bool connectable = true;
  std::vector<Session> sessions;  // sorted, non-overlapping

  bool online_at(Seconds t) const;
  /// Earliest online time >= t, or a negative value if the peer never comes
  /// online again.
  Seconds next_online(Seconds t) const;
  Seconds total_uptime() const;

  friend bool operator==(const PeerProfile&, const PeerProfile&) = default;
};

/// Peer `peer` asks for file `swarm` at time `at` (i.e. starts the
/// download as soon as it is online from `at` onward).
struct SwarmRequest {
  PeerId peer = kInvalidPeer;
  SwarmId swarm = kInvalidSwarm;
  Seconds at = 0.0;
  friend bool operator==(const SwarmRequest&, const SwarmRequest&) = default;
};

struct Trace {
  Seconds duration = 0.0;
  std::vector<FileMeta> files;        // indexed by SwarmId
  std::vector<PeerProfile> peers;     // indexed by PeerId
  std::vector<SwarmRequest> requests; // sorted by time

  /// Structural validation; returns an empty string when valid, otherwise a
  /// human-readable description of the first problem found.
  std::string validate() const;
};

}  // namespace bc::trace
