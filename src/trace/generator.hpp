// Synthetic trace generator (filelist.org stand-in).
//
// The real traces are private; this generator produces instances with the
// same schema and the statistical features the experiments rely on:
//  * per-peer session churn (alternating online/offline periods with a
//    per-peer availability level),
//  * a fixed connectable fraction (NAT),
//  * Zipf-skewed file popularity across swarms,
//  * file sizes from tens of MiB to ~2 GiB (audio through movies),
//  * each peer requesting a handful of files during the trace, biased to
//    the earlier days so downloads can complete within the window.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace bc::trace {

struct GeneratorConfig {
  std::uint64_t seed = 42;
  std::size_t num_peers = 100;
  std::size_t num_swarms = 10;
  Seconds duration = kWeek;

  /// Fraction of peers that are connectable (not NATed).
  double connectable_fraction = 0.6;

  /// Per-peer availability is drawn uniformly from this range; a peer with
  /// availability a alternates online periods of mean a*cycle and offline
  /// periods of mean (1-a)*cycle.
  double availability_min = 0.35;
  double availability_max = 0.95;
  Seconds churn_cycle = 12.0 * kHour;

  /// File sizes are log-uniform in [file_size_min, file_size_max].
  Bytes file_size_min = mib(200);
  Bytes file_size_max = gib(1.5);
  Bytes piece_size = mib(1.0);

  /// Number of files each peer requests, uniform in [min, max] (capped at
  /// num_swarms).
  std::size_t requests_per_peer_min = 4;
  std::size_t requests_per_peer_max = 9;

  /// Zipf exponent for file popularity.
  double popularity_skew = 0.8;

  /// Releases: each file goes live at a random time within the first
  /// `request_window` fraction of the trace, and its requests arrive in a
  /// flash crowd after the release (exponential decay with mean
  /// `request_decay`). This is how private-tracker swarms actually form,
  /// and it is what makes swarms thick enough for upload slots to be
  /// contested.
  double request_window = 0.75;
  Seconds request_decay = 2.0 * kHour;
};

/// Generates a valid trace; the result is deterministic in the config.
Trace generate(const GeneratorConfig& config);

}  // namespace bc::trace
