// Synthetic Tribler-deployment population (Figure 4 substitute).
//
// The paper's Figure 4 reports one month of observation of ~5000 peers by a
// single instrumented Tribler client: (a) per-peer upload minus download and
// (b) the CDF of the reputation of those peers as computed by the observer.
// We cannot rerun that deployment, so this generator synthesizes the
// population with the features the figure exhibits:
//  * a large mass of peers with exactly zero activity (fresh installs),
//  * a majority of the active peers being net downloaders,
//  * a small set of hub-like peers that become net uploaders, with a heavy
//    tail of multi-gigabyte altruists,
//  * global upload != global download (Tribler peers also barter with
//    non-Tribler BitTorrent clients, modeled as transfers to an external
//    sink/source).
//
// The generator emits the actual pairwise transfer edges, not just totals,
// so the observer experiment can run the real BarterCast message and
// reputation code paths on it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace bc::trace {

/// One directed transfer aggregate: `from` uploaded `amount` to `to`.
struct TransferEdge {
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  Bytes amount = 0;
  friend bool operator==(const TransferEdge&, const TransferEdge&) = default;
};

struct DeploymentConfig {
  std::uint64_t seed = 7;
  std::size_t num_peers = 5000;

  /// Fraction of peers that installed the client but moved no data.
  double idle_fraction = 0.5;

  /// Download volume of an active peer: lognormal, parameterized by the
  /// median (in bytes) and sigma of the underlying normal.
  Bytes download_median = gib(1.5);
  double download_sigma = 1.2;

  /// Number of distinct upload partners an active peer downloads from.
  std::size_t partners_min = 4;
  std::size_t partners_max = 25;

  /// Pareto shape for hub weights; smaller = heavier upload concentration.
  double hub_alpha = 1.1;

  /// Fraction of each peer's download volume served by peers outside the
  /// observed population (plain BitTorrent clients). This breaks the
  /// global upload == download identity, as in the real measurement.
  double external_fraction = 0.25;
};

struct DeploymentPopulation {
  std::size_t num_peers = 0;
  /// Aggregated transfers between observed peers (no duplicates, from < to
  /// not guaranteed; both directions may appear).
  std::vector<TransferEdge> transfers;
  /// Per-peer totals including traffic with external (unobserved) clients.
  std::vector<Bytes> total_up;
  std::vector<Bytes> total_down;
};

DeploymentPopulation generate_deployment(const DeploymentConfig& config);

}  // namespace bc::trace
