#include "trace/csv.hpp"

#include <algorithm>
#include <charconv>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace bc::trace {

namespace {

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_i64(const std::string& s, std::int64_t& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

void write_csv(const Trace& trace, std::ostream& os) {
  // Times must round-trip exactly; max_digits10 guarantees that.
  os.precision(17);
  os << "#trace," << trace.duration << '\n';
  for (const auto& f : trace.files) {
    os << "#file," << f.id << ',' << f.size << ',' << f.piece_size << '\n';
  }
  for (const auto& p : trace.peers) {
    os << "#peer," << p.id << ',' << (p.connectable ? 1 : 0) << '\n';
    for (const auto& s : p.sessions) {
      os << "#session," << p.id << ',' << s.start << ',' << s.end << '\n';
    }
  }
  for (const auto& r : trace.requests) {
    os << "#request," << r.peer << ',' << r.swarm << ',' << r.at << '\n';
  }
}

std::string to_csv(const Trace& trace) {
  std::ostringstream os;
  write_csv(trace, os);
  return os.str();
}

std::optional<Trace> read_csv(std::istream& is, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Trace> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  Trace tr;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split(line);
    const std::string& tag = fields[0];
    auto bad = [&] {
      return fail("line " + std::to_string(line_no) + ": malformed " + tag);
    };
    if (tag == "#trace") {
      if (fields.size() != 2 || !parse_double(fields[1], tr.duration)) {
        return bad();
      }
    } else if (tag == "#file") {
      std::int64_t id = 0, size = 0, piece = 0;
      if (fields.size() != 4 || !parse_i64(fields[1], id) ||
          !parse_i64(fields[2], size) || !parse_i64(fields[3], piece)) {
        return bad();
      }
      FileMeta f;
      f.id = static_cast<SwarmId>(id);
      f.size = size;
      f.piece_size = piece;
      tr.files.push_back(f);
    } else if (tag == "#peer") {
      std::int64_t id = 0, connectable = 0;
      if (fields.size() != 3 || !parse_i64(fields[1], id) ||
          !parse_i64(fields[2], connectable)) {
        return bad();
      }
      PeerProfile p;
      p.id = static_cast<PeerId>(id);
      p.connectable = connectable != 0;
      tr.peers.push_back(std::move(p));
    } else if (tag == "#session") {
      std::int64_t id = 0;
      Session s;
      if (fields.size() != 4 || !parse_i64(fields[1], id) ||
          !parse_double(fields[2], s.start) ||
          !parse_double(fields[3], s.end)) {
        return bad();
      }
      const auto peer = static_cast<std::size_t>(id);
      if (peer >= tr.peers.size()) {
        return fail("line " + std::to_string(line_no) +
                    ": session before its #peer line");
      }
      tr.peers[peer].sessions.push_back(s);
    } else if (tag == "#request") {
      std::int64_t peer = 0, swarm = 0;
      SwarmRequest r;
      if (fields.size() != 4 || !parse_i64(fields[1], peer) ||
          !parse_i64(fields[2], swarm) || !parse_double(fields[3], r.at)) {
        return bad();
      }
      // Untrusted int64 from the file: out-of-range ids would truncate in
      // the casts below, so reject them instead.
      if (peer < 0 ||
          peer > static_cast<std::int64_t>(
                     std::numeric_limits<PeerId>::max())) {
        return bad();
      }
      if (swarm < 0 ||
          swarm > static_cast<std::int64_t>(
                      std::numeric_limits<SwarmId>::max())) {
        return bad();
      }
      r.peer = static_cast<PeerId>(peer);
      r.swarm = static_cast<SwarmId>(swarm);
      tr.requests.push_back(r);
    } else if (tag.starts_with("#")) {
      continue;  // comment
    } else {
      return fail("line " + std::to_string(line_no) + ": unknown record");
    }
  }
  if (const std::string problem = tr.validate(); !problem.empty()) {
    return fail("invalid trace: " + problem);
  }
  return tr;
}

std::optional<Trace> from_csv(const std::string& text, std::string* error) {
  std::istringstream is(text);
  return read_csv(is, error);
}

}  // namespace bc::trace
