// CSV serialization of traces.
//
// Format (one file, sectioned so a trace stays a single artifact):
//   #trace,duration
//   #file,id,size,piece_size
//   #peer,id,connectable
//   #session,peer,start,end
//   #request,peer,swarm,at
// Sections may interleave; lines starting with '#' other than the section
// tags above and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace bc::trace {

void write_csv(const Trace& trace, std::ostream& os);
std::string to_csv(const Trace& trace);

/// Parses a trace; returns std::nullopt (and fills *error if given) on
/// malformed input or when the parsed trace fails validate().
std::optional<Trace> read_csv(std::istream& is, std::string* error = nullptr);
std::optional<Trace> from_csv(const std::string& text,
                              std::string* error = nullptr);

}  // namespace bc::trace
