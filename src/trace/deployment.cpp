#include "trace/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "util/assert.hpp"
#include "util/checked.hpp"
#include "util/rng.hpp"

namespace bc::trace {

DeploymentPopulation generate_deployment(const DeploymentConfig& cfg) {
  BC_ASSERT(cfg.num_peers >= 2);
  BC_ASSERT(cfg.idle_fraction >= 0.0 && cfg.idle_fraction < 1.0);
  BC_ASSERT(cfg.external_fraction >= 0.0 && cfg.external_fraction <= 1.0);

  Rng rng(cfg.seed);
  DeploymentPopulation pop;
  pop.num_peers = cfg.num_peers;
  pop.total_up.assign(cfg.num_peers, 0);
  pop.total_down.assign(cfg.num_peers, 0);

  // Hub weights: every peer gets a Pareto weight; uploads concentrate on
  // high-weight peers, which turns them into the net-uploader/altruist tail.
  std::vector<double> weight(cfg.num_peers);
  std::vector<bool> idle(cfg.num_peers);
  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    weight[i] = rng.pareto(1.0, cfg.hub_alpha);
    idle[i] = rng.chance(cfg.idle_fraction);
  }
  // Idle peers never serve uploads either.
  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    if (idle[i]) weight[i] = 0.0;
  }

  // Cumulative weights for O(log n) weighted partner sampling.
  std::vector<double> cum(cfg.num_peers);
  double acc = 0.0;
  for (std::size_t i = 0; i < cfg.num_peers; ++i) {
    acc += weight[i];
    cum[i] = acc;
  }
  BC_ASSERT_MSG(acc > 0.0, "all peers idle; lower idle_fraction");
  auto sample_partner = [&](PeerId self) -> PeerId {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double r = rng.uniform(0.0, acc);
      const auto it = std::lower_bound(cum.begin(), cum.end(), r);
      const auto idx = static_cast<PeerId>(it - cum.begin());
      if (idx != self && !idle[idx]) return idx;
    }
    return kInvalidPeer;
  };

  const double mu = std::log(static_cast<double>(cfg.download_median));
  std::map<std::pair<PeerId, PeerId>, Bytes> edges;

  for (PeerId i = 0; i < cfg.num_peers; ++i) {
    if (idle[i]) continue;
    const auto volume =
        static_cast<Bytes>(rng.lognormal(mu, cfg.download_sigma));
    if (volume <= 0) continue;
    const auto external = static_cast<Bytes>(
        static_cast<double>(volume) * cfg.external_fraction);
    // Synthetic volumes come from an unbounded lognormal: saturate so
    // an extreme config degrades instead of wrapping the ledger.
    pop.total_down[i] = bc::util::saturating_add(pop.total_down[i],
                                                 external);

    const Bytes internal = volume - external;
    const auto num_partners = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(cfg.partners_min),
        static_cast<std::int64_t>(cfg.partners_max)));
    if (num_partners == 0 || internal <= 0) continue;

    // Split the internal volume across partners with random proportions.
    std::vector<double> shares(num_partners);
    double share_sum = 0.0;
    for (auto& s : shares) {
      s = rng.exponential(1.0);
      share_sum += s;
    }
    if (share_sum <= 0.0) continue;  // all-zero draws: nothing to split
    for (double s : shares) {
      const PeerId up = sample_partner(i);
      if (up == kInvalidPeer) continue;
      const auto amount =
          static_cast<Bytes>(static_cast<double>(internal) * s / share_sum);
      if (amount <= 0) continue;
      edges[{up, i}] += amount;
      pop.total_up[up] = bc::util::saturating_add(pop.total_up[up],
                                                  amount);
      pop.total_down[i] = bc::util::saturating_add(pop.total_down[i],
                                                   amount);
    }
    // Active peers also seed a little to external clients now and then.
    if (rng.chance(0.3)) {
      pop.total_up[i] = bc::util::saturating_add(
          pop.total_up[i],
          static_cast<Bytes>(rng.lognormal(mu - 1.5, cfg.download_sigma)));
    }
  }

  pop.transfers.reserve(edges.size());
  for (const auto& [key, amount] : edges) {
    pop.transfers.push_back(TransferEdge{key.first, key.second, amount});
  }
  return pop;
}

}  // namespace bc::trace
