#include "trace/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace bc::trace {

bool PeerProfile::online_at(Seconds t) const {
  // Sessions are sorted; binary search for the first session ending after t.
  auto it = std::lower_bound(
      sessions.begin(), sessions.end(), t,
      [](const Session& s, Seconds v) { return s.end <= v; });
  return it != sessions.end() && it->start <= t;
}

Seconds PeerProfile::next_online(Seconds t) const {
  auto it = std::lower_bound(
      sessions.begin(), sessions.end(), t,
      [](const Session& s, Seconds v) { return s.end <= v; });
  if (it == sessions.end()) return -1.0;
  return std::max(t, it->start);
}

Seconds PeerProfile::total_uptime() const {
  Seconds total = 0.0;
  for (const auto& s : sessions) total += s.end - s.start;
  return total;
}

std::string Trace::validate() const {
  std::ostringstream err;
  if (duration <= 0.0) return "duration must be positive";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& f = files[i];
    if (f.id != static_cast<SwarmId>(i)) {
      err << "file " << i << ": id not dense";
      return err.str();
    }
    if (f.size <= 0 || f.piece_size <= 0 || f.piece_size > f.size) {
      err << "file " << i << ": invalid sizes";
      return err.str();
    }
  }
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto& p = peers[i];
    if (p.id != static_cast<PeerId>(i)) {
      err << "peer " << i << ": id not dense";
      return err.str();
    }
    Seconds prev_end = -1.0;
    for (const auto& s : p.sessions) {
      if (s.start >= s.end) {
        err << "peer " << i << ": empty/inverted session";
        return err.str();
      }
      if (s.start < prev_end) {
        err << "peer " << i << ": sessions overlap or unsorted";
        return err.str();
      }
      if (s.end > duration || s.start < 0.0) {
        err << "peer " << i << ": session outside trace duration";
        return err.str();
      }
      prev_end = s.end;
    }
  }
  std::set<std::pair<PeerId, SwarmId>> seen;
  Seconds prev_at = 0.0;
  for (const auto& r : requests) {
    if (r.peer >= peers.size()) return "request references unknown peer";
    if (r.swarm >= files.size()) return "request references unknown swarm";
    if (r.at < 0.0 || r.at >= duration) return "request outside duration";
    if (r.at < prev_at) return "requests not sorted by time";
    prev_at = r.at;
    if (!seen.insert({r.peer, r.swarm}).second) {
      return "duplicate (peer, swarm) request";
    }
  }
  return {};
}

}  // namespace bc::trace
