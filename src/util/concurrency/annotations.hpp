// Clang thread-safety analysis annotations (no-ops under GCC).
//
// These macros wrap the capability attributes documented in
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so that lock
// discipline is *proven at compile time*: a Clang build carries
// -Wthread-safety -Werror=thread-safety (see the root CMakeLists), which
// rejects any access to a BC_GUARDED_BY member without the named capability
// held, any double-acquire, and any scope exit with a capability still held.
// GCC ignores the attributes, so the annotations cost nothing there; the CI
// thread-safety job builds with Clang to enforce them on every PR.
//
// Usage sketch (see util/concurrency/mutex.hpp for the sanctioned types):
//
//   class Account {
//     util::Mutex mu_;
//     Bytes balance_ BC_GUARDED_BY(mu_) = 0;
//    public:
//     void deposit(Bytes b) {
//       util::LockGuard lock(mu_);  // BC_ACQUIRE/BC_RELEASE via RAII
//       balance_ += b;              // OK: mu_ is held
//     }
//   };
//
// Convention (enforced by bc-analyze rule C2): every mutable member of a
// class that owns a bc::util::Mutex is either BC_GUARDED_BY(that mutex), a
// synchronization primitive itself, or carries a reasoned suppression.
#pragma once

#if defined(__clang__)
#define BC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BC_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Marks a type as a capability (a mutex-like resource) for the analysis.
#define BC_CAPABILITY(x) BC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define BC_SCOPED_CAPABILITY BC_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define BC_GUARDED_BY(x) BC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define BC_PT_GUARDED_BY(x) BC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the listed capabilities (default: `this`).
#define BC_ACQUIRE(...) BC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (default: `this`).
#define BC_RELEASE(...) BC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function may acquire; returns `ret` on success (e.g. try_lock -> true).
#define BC_TRY_ACQUIRE(...) \
  BC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must already hold the listed capabilities.
#define BC_REQUIRES(...) BC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define BC_EXCLUDES(...) BC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define BC_RETURN_CAPABILITY(x) BC_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must be
/// justified in a comment (and survives review like a bc-analyze
/// suppression would).
#define BC_NO_THREAD_SAFETY_ANALYSIS \
  BC_THREAD_ANNOTATION(no_thread_safety_analysis)
