// Sanctioned relaxed atomics for monotone instrumentation counters.
//
// bc-analyze rule C1 keeps raw std::atomic inside src/util/concurrency/;
// these wrappers expose the two shapes the codebase actually needs —
// a saturating-free add-only counter and a set-before-threads flag — with
// memory_order_relaxed baked in. Relaxed is correct here because the values
// never order other memory: counters are summed/reported after the pool has
// been joined (a join is a full synchronization point), and flags are
// written during single-threaded setup.
//
// Determinism note: integer addition is commutative and associative, so a
// RelaxedCounter total is bit-identical at any thread count or interleaving.
#pragma once

#include <atomic>
#include <cstdint>

namespace bc::util {

/// Add-only uint64 counter, safe to increment from pool workers.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// add() that also returns the pre-add value (a unique-id allocator).
  std::uint64_t fetch_add(std::uint64_t n) {
    return v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Boolean flag toggled while single-threaded, read from anywhere.
class RelaxedBool {
 public:
  RelaxedBool() = default;
  explicit RelaxedBool(bool v) : v_(v) {}
  RelaxedBool(const RelaxedBool&) = delete;
  RelaxedBool& operator=(const RelaxedBool&) = delete;

  void store(bool v) { v_.store(v, std::memory_order_relaxed); }
  bool load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> v_{false};
};

}  // namespace bc::util
