// Deterministic shard-slot identity for per-thread instrument shards.
//
// Sharded observability instruments (obs::Counter / obs::LogHistogram) keep
// one cache-line-padded slot per parallel_for *chunk* and route every
// recording to the calling thread's current slot. The slot is the chunk
// index of the enclosing ThreadPool::parallel_for — NOT a thread id: chunk
// boundaries depend only on (n, num_threads), never on which worker happened
// to pop which task, so the per-slot partials (and therefore any merge that
// walks slots in ascending order) are reproducible run-to-run at a fixed
// thread count, and integer-state instruments stay bit-identical across
// thread counts because their merges are commutative sums.
//
// Outside a pool chunk the slot is 0, which aliases the caller-executed
// chunk 0 of a running parallel_for. That alias is safe by construction:
// serial-phase code and chunk 0 are the same thread.
//
// Only ThreadPool::parallel_for (and tests) may install a slot; everything
// else just reads current_shard_slot(). Like the rest of this directory the
// thread-local lives behind bc-analyze rule C1's fence.
#pragma once

#include <cstddef>

namespace bc::util {

/// Shard slot of the calling thread: the parallel_for chunk index while
/// inside a ThreadPool chunk body, 0 in any serial phase. One thread-local
/// load — cheap enough for always-on counters.
std::size_t current_shard_slot();

/// RAII installer for a chunk body's slot. Restores the previous slot on
/// destruction so nested serial helpers called after the chunk see 0 again.
class ShardSlotScope {
 public:
  explicit ShardSlotScope(std::size_t slot);
  ~ShardSlotScope();

  ShardSlotScope(const ShardSlotScope&) = delete;
  ShardSlotScope& operator=(const ShardSlotScope&) = delete;

 private:
  std::size_t prev_;
};

/// Stable opaque identity of the calling thread, for the owning-thread
/// debug checks on serial-phase instruments (obs::Gauge / obs::Histogram).
/// Distinct threads return distinct pointers for the lifetime of both
/// threads; the value orders nothing and is never used as a key, so it
/// cannot introduce pointer-order nondeterminism (bc-analyze D4).
const void* current_thread_tag();

}  // namespace bc::util
