// Annotated mutual-exclusion primitives: the only sanctioned way to lock.
//
// bc-analyze rule C1 bans raw std::mutex / std::condition_variable /
// std::thread / std::atomic outside this directory, so every lock in the
// tree is a bc::util::Mutex and therefore visible to Clang's thread-safety
// analysis (see annotations.hpp). The wrappers add nothing at runtime: all
// methods are single inline forwards to the std primitives.
//
// Lock discipline in this codebase is deliberately boring: leaf mutexes
// only, no nested acquisition, RAII (LockGuard) everywhere, waits through
// CondVar::wait with the guarded predicate re-checked in a loop.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/concurrency/annotations.hpp"

namespace bc::util {

/// A std::mutex carrying the `capability` attribute so Clang can check
/// acquire/release pairing and BC_GUARDED_BY access at compile time.
class BC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BC_ACQUIRE() { m_.lock(); }
  void unlock() BC_RELEASE() { m_.unlock(); }
  bool try_lock() BC_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The wrapped std::mutex, for CondVar's adopt/release dance only.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock for a Mutex; the analysis knows the capability is held for
/// exactly the guard's scope.
class BC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) BC_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() BC_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable usable with an annotated Mutex. wait() requires the
/// mutex held (checked by the analysis) and returns with it held again;
/// callers re-test their predicate in a while loop, as always.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `m`, blocks, and re-acquires `m` before returning.
  /// Implemented by adopting the already-held native mutex into a
  /// unique_lock and releasing it again afterwards, so the capability state
  /// seen by the analysis (held on entry, held on exit) matches reality.
  void wait(Mutex& m) BC_REQUIRES(m) {
    std::unique_lock<std::mutex> native(m.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // still locked; Mutex ownership stays with the caller
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bc::util
