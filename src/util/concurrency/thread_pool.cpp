#include "util/concurrency/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/concurrency/shard_slot.hpp"

namespace bc::util {

namespace {

/// Completion tracker for one parallel_for call. Lives on the caller's
/// stack; chunk tasks signal it as they finish.
struct Batch {
  Mutex mu;
  CondVar done;
  std::size_t remaining BC_GUARDED_BY(mu) = 0;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  BC_ASSERT_MSG(threads >= 1, "a pool needs at least the calling thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mu_);
      while (queue_.empty() && !stop_) work_ready_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks =
      workers_.empty() ? 1 : std::min(workers_.size() + 1, n);
  if (chunks == 1) {
    // Serial pool (or a single chunk): the exact serial program.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  BC_ASSERT(chunks > 1);

  // Static chunking: chunk c covers [c*n/chunks, (c+1)*n/chunks). The
  // boundaries depend only on (n, chunks), never on scheduling, and bodies
  // write disjoint per-index state, so any interleaving yields the same
  // result. Chunk 0 runs on the calling thread; 1..chunks-1 go to workers.
  // Each chunk installs its index as the thread's shard slot, so sharded
  // obs instruments partition recordings by *chunk* (deterministic ranges),
  // not by which worker happened to run the chunk.
  Batch batch;
  {
    LockGuard lock(batch.mu);
    batch.remaining = chunks - 1;
  }
  {
    LockGuard lock(mu_);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t lo = c * n / chunks;
      const std::size_t hi = (c + 1) * n / chunks;
      queue_.emplace_back([&body, &batch, c, lo, hi] {
        {
          const ShardSlotScope slot(c);
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }
        LockGuard inner(batch.mu);
        if (--batch.remaining == 0) batch.done.notify_all();
      });
    }
  }
  work_ready_.notify_all();

  const std::size_t hi0 = n / chunks;
  {
    const ShardSlotScope slot(0);
    for (std::size_t i = 0; i < hi0; ++i) body(i);
  }

  LockGuard lock(batch.mu);
  while (batch.remaining > 0) batch.done.wait(batch.mu);
}

}  // namespace bc::util
