// Fixed-size thread pool with a deterministic parallel_for.
//
// Determinism contract (the whole point of this pool): parallel_for(n, body)
// invokes body(i) exactly once for every i in [0, n), where body writes only
// to state owned by index i (typically out[i]). Work is split into
// *statically chunked* contiguous index ranges, one per participating
// thread, and callers merge any cross-index reduction themselves, serially,
// in ascending index order. Because no result ever depends on which thread
// ran which chunk or in what order chunks finished, the output is
// bit-identical to a serial run at any thread count — the parallel
// determinism suite (ctest -L parallel) and the TSan preset both enforce
// this.
//
// ThreadPool(1) spawns no threads at all and runs parallel_for inline in
// ascending index order, so `--threads 1` is literally the serial program.
// ThreadPool(t >= 2) spawns t-1 workers; the calling thread executes chunk 0
// itself while workers take the rest, so t is the total concurrency.
//
// This is the only file in the tree allowed to touch std::thread (bc-analyze
// rule C1); the queue is guarded by an annotated Mutex so Clang's
// -Werror=thread-safety proves the locking discipline at compile time.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/concurrency/annotations.hpp"
#include "util/concurrency/mutex.hpp"

namespace bc::util {

class ThreadPool {
 public:
  /// `threads` is the total concurrency (calling thread included); must be
  /// >= 1. ThreadPool(1) is the no-op serial pool.
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers. No parallel_for may be in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency this pool was built with (workers + caller).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs body(i) once for each i in [0, n), statically chunked across the
  /// pool, and returns when every call has completed. body must only write
  /// state owned by its index (see the header comment); it must not throw
  /// and must not call parallel_for on the same pool (no nesting).
  /// Serial pools (num_threads() == 1) run inline in ascending index order.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  Mutex mu_;
  CondVar work_ready_;
  std::deque<std::function<void()>> queue_ BC_GUARDED_BY(mu_);
  bool stop_ BC_GUARDED_BY(mu_) = false;
  // bc-analyze: allow(C2) -- written once in the constructor and joined in the destructor, both provably single-threaded; never touched by workers
  std::vector<std::thread> workers_;
};

}  // namespace bc::util
