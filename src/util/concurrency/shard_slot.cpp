#include "util/concurrency/shard_slot.hpp"

namespace bc::util {

namespace {

thread_local std::size_t t_shard_slot = 0;

thread_local char t_thread_tag = 0;

}  // namespace

std::size_t current_shard_slot() { return t_shard_slot; }

ShardSlotScope::ShardSlotScope(std::size_t slot) : prev_(t_shard_slot) {
  t_shard_slot = slot;
}

ShardSlotScope::~ShardSlotScope() { t_shard_slot = prev_; }

const void* current_thread_tag() { return &t_thread_tag; }

}  // namespace bc::util
