#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bc {

double Rng::exponential(double mean) {
  BC_ASSERT(mean > 0.0);
  // uniform() is in [0,1); use 1-u in (0,1] so log() never sees zero.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mu, double sigma) {
  // Box-Muller transform. We intentionally regenerate both uniforms each
  // call instead of caching the second variate: determinism across forks is
  // worth more here than the factor-of-two saving.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(2.0 * M_PI * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  BC_ASSERT(xm > 0.0 && alpha > 0.0);
  const double u = 1.0 - uniform();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  BC_ASSERT(n > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= 1.0 / std::pow(static_cast<double>(i + 1), s);
    if (target <= 0.0) return i;
  }
  return n - 1;
}

}  // namespace bc
