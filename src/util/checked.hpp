// Checked and saturating int64 arithmetic for the Bytes accounting paths.
//
// BarterCast's mechanism is integer accounting: Bytes upload/download
// totals feed subjective-graph capacities, maxflow sums, and the Eq. 1
// arctan ratio. Signed overflow on any of those is UB and silently
// corrupts reputations. These helpers make the overflow policy explicit
// at each accumulation site:
//
//   * checked_add / checked_mul — the value is owner-local and a wrap
//     would be a program bug: BC_DASSERT in debug builds, well-defined
//     (wrapping-free, computed in unsigned space) result in release.
//   * saturating_add / saturating_sub — the value is influenced by remote
//     input (gossiped capacities, trace-file totals) that an adversary
//     can drive to extremes (Nielson et al.): clamp at the int64
//     endpoints instead of trusting the input to stay bounded.
//
// All are built on the compiler's __builtin_*_overflow primitives, which
// compile to a flag test around the plain instruction — cheap enough for
// the maxflow hot loops. bc-analyze rule V1 treats a conversion to these
// forms as discharging the overflow proof obligation.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

// Opt-out for functions whose unsigned wraparound is the algorithm (hash
// mixers, xoshiro state updates, rejection-sampling range math). Applied
// per function so the `integer` sanitizer preset (Clang's
// -fsanitize=integer, see CMakeLists.txt) stays no-recover everywhere
// else: a wrap outside an annotated mixer is still a hard CI failure.
#if defined(__clang__)
#define BC_NO_SANITIZE_INTEGER __attribute__((no_sanitize("integer")))
#else
#define BC_NO_SANITIZE_INTEGER
#endif

namespace bc::util {

/// a + b with a debug assert that the sum stays inside int64. In release
/// builds the wrapped two's-complement value is returned (computed by the
/// builtin without UB), so behavior is defined in every build type.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  const bool overflow = __builtin_add_overflow(a, b, &out);
  BC_DASSERT(!overflow && "checked_add: int64 overflow");
  static_cast<void>(overflow);
  return out;
}

/// a * b with a debug assert that the product stays inside int64.
inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  const bool overflow = __builtin_mul_overflow(a, b, &out);
  BC_DASSERT(!overflow && "checked_mul: int64 overflow");
  static_cast<void>(overflow);
  return out;
}

/// a + b clamped to [INT64_MIN, INT64_MAX]. The clamp direction follows
/// the sign of the true sum: a positive overflow saturates at max, a
/// negative one at min.
inline std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

/// a - b clamped to [INT64_MIN, INT64_MAX].
inline std::int64_t saturating_sub(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    return b < 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return out;
}

}  // namespace bc::util
