#include "util/logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace bc {

void Logger::log(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

namespace detail {

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail

}  // namespace bc
