#include "util/logging.hpp"

#include <cstdarg>
#include <cstdio>

namespace bc {

void Logger::set_time_provider(TimeFn fn, const void* owner) {
  time_fn_ = std::move(fn);
  time_owner_ = owner;
}

void Logger::clear_time_provider(const void* owner) {
  if (time_owner_ != owner) return;
  time_fn_ = nullptr;
  time_owner_ = nullptr;
}

std::string Logger::format_line(LogLevel level, const char* component,
                                const std::string& message) const {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  std::string line;
  if (time_fn_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%.3f] ", time_fn_());
    line += buf;
  }
  line += '[';
  line += component;
  line += "] [";
  line += kNames[static_cast<int>(level)];
  line += "] ";
  line += message;
  return line;
}

void Logger::log(LogLevel level, const char* component,
                 const std::string& message) {
  std::fprintf(stderr, "%s\n", format_line(level, component, message).c_str());
}

namespace detail {

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail

}  // namespace bc
