// Small table formatter used by the bench binaries to print the rows/series
// behind each figure of the paper, both human-readable and as CSV.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bc {

/// Column-oriented table: set a header, append rows of cells, render.
/// Numeric cells should be pre-formatted by the caller (see fmt helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Renders an aligned, pipe-separated human-readable table.
  std::string to_string() const;
  /// Renders RFC-4180-ish CSV (cells containing comma/quote get quoted).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 3);
/// Formats a byte count with a human unit suffix (e.g. "1.50 GiB").
std::string fmt_bytes(long long bytes);

}  // namespace bc
