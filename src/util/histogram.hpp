// Histograms and empirical CDFs, used for Figure 4(b)-style outputs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bc {

/// Fixed-range histogram with uniform bins; out-of-range values clamp into
/// the boundary bins so total count always equals the number of adds.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double value);

  std::size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  double bin_center(std::size_t bin) const;
  /// Fraction of observations in the bin (0 when the histogram is empty).
  double density(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// One point of an empirical CDF: P(X <= value) = fraction.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// Empirical CDF of a sample: one point per distinct value, fractions
/// non-decreasing and ending at 1. Empty input yields an empty curve.
std::vector<CdfPoint> empirical_cdf(std::span<const double> values);

/// Evaluates an empirical CDF at `x` (right-continuous step function).
double cdf_at(std::span<const CdfPoint> cdf, double x);

}  // namespace bc
