// Strong-ish unit helpers shared by every module.
//
// The simulator measures data in whole bytes (int64), time in seconds
// (double, simulation time), and rates in bytes per second (double).
// Helper constants and conversion functions keep magic numbers out of the
// rest of the code base.
#pragma once

#include <cstdint>

namespace bc {

/// Aggregated data amount in bytes. Signed so that differences
/// (upload - download) are representable directly.
using Bytes = std::int64_t;

/// Simulation time in seconds since the start of the run.
using Seconds = double;

/// Transfer rate in bytes per second.
using Rate = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;
inline constexpr Seconds kDay = 24.0 * kHour;
inline constexpr Seconds kWeek = 7.0 * kDay;

constexpr double to_kib(Bytes b) { return static_cast<double>(b) / 1024.0; }
constexpr double to_mib(Bytes b) {
  return static_cast<double>(b) / static_cast<double>(kMiB);
}
constexpr double to_gib(Bytes b) {
  return static_cast<double>(b) / static_cast<double>(kGiB);
}

constexpr Bytes kib(double k) { return static_cast<Bytes>(k * 1024.0); }
constexpr Bytes mib(double m) {
  return static_cast<Bytes>(m * static_cast<double>(kMiB));
}
constexpr Bytes gib(double g) {
  return static_cast<Bytes>(g * static_cast<double>(kGiB));
}

constexpr double days(Seconds s) { return s / kDay; }
constexpr double hours(Seconds s) { return s / kHour; }

}  // namespace bc
