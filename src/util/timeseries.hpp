// Binned time series used to record per-interval metrics (e.g. average
// download speed per simulated hour, as plotted in Figures 1-3 of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace bc {

/// Accumulates (time, value) observations into fixed-width bins and exposes
/// the per-bin mean. Observations outside [t0, t0 + bins*width) clamp to the
/// first/last bin so late stragglers are never lost silently.
class TimeSeries {
 public:
  TimeSeries(Seconds start, Seconds bin_width, std::size_t num_bins);

  void add(Seconds t, double value);

  std::size_t num_bins() const { return bins_.size(); }
  Seconds bin_width() const { return width_; }
  Seconds start() const { return start_; }
  /// Center of bin i on the time axis (handy for plotting).
  Seconds bin_center(std::size_t i) const;

  /// Per-bin mean; 0.0 for empty bins (also see bin_count()).
  double bin_mean(std::size_t i) const;
  std::size_t bin_count(std::size_t i) const;
  const OnlineStats& bin(std::size_t i) const;

  /// All bin means in order, convenient for table printing.
  std::vector<double> means() const;

 private:
  Seconds start_;
  Seconds width_;
  std::vector<OnlineStats> bins_;
};

}  // namespace bc
