// Minimal leveled logging used across the simulator.
//
// The simulator is single-threaded; the logger therefore keeps no locks.
// Benches set the level to Warn so that experiment output stays clean.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace bc {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
};

namespace detail {

std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace detail

}  // namespace bc

// printf-style logging macros; arguments are not evaluated when the level is
// disabled, which matters in hot simulation loops.
#define BC_LOG(level, ...)                                          \
  do {                                                              \
    if (::bc::Logger::instance().enabled(level)) {                  \
      ::bc::Logger::instance().log(                                 \
          level, ::bc::detail::format_log(__VA_ARGS__));            \
    }                                                               \
  } while (false)

#define BC_TRACE(...) BC_LOG(::bc::LogLevel::Trace, __VA_ARGS__)
#define BC_DEBUG(...) BC_LOG(::bc::LogLevel::Debug, __VA_ARGS__)
#define BC_INFO(...) BC_LOG(::bc::LogLevel::Info, __VA_ARGS__)
#define BC_WARN(...) BC_LOG(::bc::LogLevel::Warn, __VA_ARGS__)
#define BC_ERROR(...) BC_LOG(::bc::LogLevel::Error, __VA_ARGS__)
