// Minimal leveled logging used across the simulator.
//
// The simulator is single-threaded; the logger therefore keeps no locks.
// Benches set the level to Warn so that experiment output stays clean.
//
// Structured prefix: every line carries the log level, a component tag, and
// — when a simulation-time provider is installed (sim::Engine does this for
// its lifetime) — the current sim time, so log lines correlate with the
// obs tracer's sim-time timeline:
//
//   [t=3600.000] [community] [DEBUG] round: 12 links active
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>

namespace bc {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

class Logger {
 public:
  /// Returns the current simulation time for line prefixes.
  using TimeFn = std::function<double()>;

  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Installs `fn` as the sim-time source for log prefixes. `owner`
  /// identifies the installer so a later clear by a different (stale)
  /// owner cannot drop a newer provider.
  void set_time_provider(TimeFn fn, const void* owner);
  /// Clears the provider iff `owner` installed the current one.
  void clear_time_provider(const void* owner);
  bool has_time_provider() const { return static_cast<bool>(time_fn_); }

  void log(LogLevel level, const std::string& message) {
    log(level, "bc", message);
  }
  void log(LogLevel level, const char* component, const std::string& message);

  /// Renders the prefixed line (exposed for tests; log() prints this).
  std::string format_line(LogLevel level, const char* component,
                          const std::string& message) const;

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  TimeFn time_fn_;
  const void* time_owner_ = nullptr;
};

namespace detail {

std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace detail

}  // namespace bc

// printf-style logging macros; arguments are not evaluated when the level is
// disabled, which matters in hot simulation loops. BC_LOG_TAG carries an
// explicit component tag; the bare macros default to the "bc" component.
#define BC_LOG_TAG(level, component, ...)                           \
  do {                                                              \
    if (::bc::Logger::instance().enabled(level)) {                  \
      ::bc::Logger::instance().log(                                 \
          level, component, ::bc::detail::format_log(__VA_ARGS__)); \
    }                                                               \
  } while (false)

#define BC_LOG(level, ...) BC_LOG_TAG(level, "bc", __VA_ARGS__)

#define BC_TRACE(...) BC_LOG(::bc::LogLevel::Trace, __VA_ARGS__)
#define BC_DEBUG(...) BC_LOG(::bc::LogLevel::Debug, __VA_ARGS__)
#define BC_INFO(...) BC_LOG(::bc::LogLevel::Info, __VA_ARGS__)
#define BC_WARN(...) BC_LOG(::bc::LogLevel::Warn, __VA_ARGS__)
#define BC_ERROR(...) BC_LOG(::bc::LogLevel::Error, __VA_ARGS__)
