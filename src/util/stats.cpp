#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace bc {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  BC_ASSERT(total > 0.0);
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  BC_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double median(std::span<const double> values) {
  return percentile(values, 0.5);
}

double pearson(std::span<const double> x, std::span<const double> y) {
  BC_ASSERT(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  // bc-analyze: allow(B2) -- exact-zero guard before division: only a literally zero variance (constant input) is degenerate
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  BC_ASSERT(x.size() == y.size());
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  BC_ASSERT(x.size() == y.size());
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  // bc-analyze: allow(B2) -- exact-zero guard before division: only a literally zero variance (constant input) is degenerate
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace bc
