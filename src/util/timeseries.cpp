#include "util/timeseries.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bc {

TimeSeries::TimeSeries(Seconds start, Seconds bin_width, std::size_t num_bins)
    : start_(start), width_(bin_width), bins_(num_bins) {
  BC_ASSERT(bin_width > 0.0);
  BC_ASSERT(num_bins > 0);
}

void TimeSeries::add(Seconds t, double value) {
  BC_ASSERT(width_ > 0.0);
  double idx = (t - start_) / width_;
  idx = std::clamp(idx, 0.0, static_cast<double>(bins_.size() - 1));
  bins_[static_cast<std::size_t>(idx)].add(value);
}

Seconds TimeSeries::bin_center(std::size_t i) const {
  BC_ASSERT(i < bins_.size());
  return start_ + (static_cast<double>(i) + 0.5) * width_;
}

double TimeSeries::bin_mean(std::size_t i) const {
  BC_ASSERT(i < bins_.size());
  return bins_[i].mean();
}

std::size_t TimeSeries::bin_count(std::size_t i) const {
  BC_ASSERT(i < bins_.size());
  return bins_[i].count();
}

const OnlineStats& TimeSeries::bin(std::size_t i) const {
  BC_ASSERT(i < bins_.size());
  return bins_[i];
}

std::vector<double> TimeSeries::means() const {
  std::vector<double> out;
  out.reserve(bins_.size());
  for (const auto& b : bins_) out.push_back(b.mean());
  return out;
}

}  // namespace bc
