// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator takes an explicit Rng (or a
// seed from which it derives one) so that a scenario config reproduces
// bit-identical runs. The generator is xoshiro256**, a small, fast,
// well-tested generator; seeding goes through splitmix64 as recommended by
// its authors.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/checked.hpp"  // BC_NO_SANITIZE_INTEGER

namespace bc {

/// xoshiro256** pseudo-random generator. Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64 so that any 64-bit seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  BC_NO_SANITIZE_INTEGER void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      // bc-analyze: allow(V3) -- s is a 64-bit state word (auto& over state_); the xor-shift finalizer is SplitMix64's full-width mixing step, not a narrowing store
      s = z ^ (z >> 31);
    }
  }

  BC_NO_SANITIZE_INTEGER result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child generator; used to give each simulated
  /// peer its own stream so that adding a peer does not perturb others.
  Rng fork() { return Rng((*this)() ^ 0xa0761d6478bd642fULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  BC_NO_SANITIZE_INTEGER std::int64_t uniform_int(std::int64_t lo,
                                                  std::int64_t hi) {
    BC_ASSERT(lo <= hi);
    // Width computed in unsigned space: hi - lo as int64 overflows for
    // spans past 2^63 (e.g. the full-range call), and the +1 wrapping to
    // zero for the full 64-bit span is the sentinel the branch below keys
    // on — both are the modular arithmetic this annotation opts into.
    const std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    // Bounded generation with rejection to avoid modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller, one value per call).
  double normal(double mu, double sigma);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Pareto (power-law) value with minimum xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Zipf-like rank selection: picks an index in [0, n) with probability
  /// proportional to 1 / (rank+1)^s. O(n) per call; intended for setup code.
  std::size_t zipf(std::size_t n, double s);

  /// Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    BC_ASSERT(n > 0);
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      // bc-analyze: allow(V4) -- i starts at v.size() and only decrements, so i - 1 < v.size() on every iteration; the downward loop's init bound is outside the interval domain
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Samples up to k distinct elements from v (order not preserved in the
  /// sense of v; result order is random).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> pool = v;
    if (k >= pool.size()) {
      shuffle(pool);
      return pool;
    }
    std::vector<T> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(pool.size() - i);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace bc
