#include "util/flags.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace bc {

std::optional<Flags> Flags::parse(
    int argc, const char* const* argv,
    const std::map<std::string, std::string>& allowed) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    if (!allowed.contains(name)) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      return std::nullopt;
    }
    if (!have_value) {
      // --name value form, unless the next token is another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean
      }
    }
    flags.values_[name] = value;
  }
  return flags;
}

std::string Flags::usage(const std::string& program,
                         const std::map<std::string, std::string>& allowed) {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, help] : allowed) {
    os << "  --" << name << "  " << help << '\n';
  }
  return os.str();
}

bool Flags::has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    std::fprintf(stderr, "flag --%s: expected integer, got '%s'\n",
                 name.c_str(), s.c_str());
    valid_ = false;
    return fallback;
  }
  return out;
}

double Flags::get_double(const std::string& name, double fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double out = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trail");
    return out;
  } catch (...) {
    std::fprintf(stderr, "flag --%s: expected number, got '%s'\n",
                 name.c_str(), it->second.c_str());
    valid_ = false;
    return fallback;
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace bc
