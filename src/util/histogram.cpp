#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bc {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  BC_ASSERT(hi > lo);
  BC_ASSERT(num_bins > 0);
}

void Histogram::add(double value) {
  BC_ASSERT(!counts_.empty());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  BC_ASSERT(width > 0.0);
  double idx = (value - lo_) / width;
  idx = std::clamp(idx, 0.0, static_cast<double>(counts_.size() - 1));
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  BC_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  BC_ASSERT(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::density(std::size_t bin) const {
  BC_ASSERT(bin < counts_.size());
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  const std::size_t n = sorted.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Collapse runs of equal values into a single point carrying the
    // cumulative fraction up to and including the run.
    // bc-analyze: allow(B2) -- exact equality is the point: only bit-identical sorted duplicates collapse; a tolerance would merge distinct values
    if (!out.empty() && out.back().value == sorted[i]) {
      out.back().fraction =
          static_cast<double>(i + 1) / static_cast<double>(n);
    } else {
      out.push_back({sorted[i],
                     static_cast<double>(i + 1) / static_cast<double>(n)});
    }
  }
  return out;
}

double cdf_at(std::span<const CdfPoint> cdf, double x) {
  double result = 0.0;
  for (const auto& p : cdf) {
    if (p.value <= x) {
      result = p.fraction;
    } else {
      break;
    }
  }
  return result;
}

}  // namespace bc
