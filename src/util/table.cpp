#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace bc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  BC_ASSERT(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  BC_ASSERT_MSG(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_bytes(long long bytes) {
  const char* sign = bytes < 0 ? "-" : "";
  const double b = std::abs(static_cast<double>(bytes));
  char buf[64];
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%s%.2f GiB", sign,
                  b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%s%.2f MiB", sign, b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%s%.2f KiB", sign, b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.0f B", sign, b);
  }
  return buf;
}

}  // namespace bc
