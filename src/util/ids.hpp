// Shared identifier types.
//
// The whole code base addresses peers and swarms by dense small integers;
// the trace layer owns the mapping to any external identity (a permanent
// Tribler-style identifier in deployment, a trace row in simulation).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace bc {

/// Identifies a peer in the community. Dense, starting at 0.
using PeerId = std::uint32_t;

/// Identifies a swarm (one torrent/file being shared).
using SwarmId = std::uint32_t;

inline constexpr PeerId kInvalidPeer = std::numeric_limits<PeerId>::max();
inline constexpr SwarmId kInvalidSwarm = std::numeric_limits<SwarmId>::max();

/// Unordered pair of peers, canonicalized so (a,b) == (b,a).
struct PeerPair {
  PeerId lo;
  PeerId hi;

  PeerPair(PeerId a, PeerId b) : lo(a < b ? a : b), hi(a < b ? b : a) {}
  friend bool operator==(const PeerPair&, const PeerPair&) = default;
};

struct PeerPairHash {
  std::size_t operator()(const PeerPair& p) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.lo) << 32) | p.hi);
  }
};

}  // namespace bc
