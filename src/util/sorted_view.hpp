// Deterministic iteration over unordered containers.
//
// BarterCast's correctness argument requires that every peer derive the
// same subjective graph from the same gossip, and that exports/serialized
// output be byte-identical across runs and standard-library
// implementations. Iterating a std::unordered_map/set directly gives an
// implementation-defined order, so any loop whose iteration order can
// reach gossip record selection, reputation evaluation, or serialized
// output must go through sorted_view() (or collect-and-sort with a
// total-order comparator). scripts/bc_analyze.py rule D1 enforces this
// tree-wide.
//
// The view materializes a vector of pointers into the container and sorts
// it by key (or by value for sets); iteration then yields stable
// references into the original container. The container must outlive the
// view and must not be rehashed while the view is alive.
//
//   for (const auto& [peer, entry] : bc::util::sorted_view(map)) ...
//   for (PeerId p : bc::util::sorted_view(set)) ...
//   std::vector<K> ks = bc::util::sorted_keys(map_or_set);
#pragma once

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace bc::util {

namespace detail {

/// Random-access iterator over a vector of element pointers that
/// dereferences to the pointed-to element, so structured bindings work the
/// same as on the underlying container.
template <typename Value>
class PtrIterator {
 public:
  using value_type = Value;
  using reference = const Value&;
  using pointer = const Value*;
  using difference_type = std::ptrdiff_t;
  using iterator_category = std::forward_iterator_tag;

  PtrIterator() = default;
  explicit PtrIterator(const Value* const* pos) : pos_(pos) {}

  reference operator*() const { return **pos_; }
  pointer operator->() const { return *pos_; }
  PtrIterator& operator++() {
    ++pos_;
    return *this;
  }
  PtrIterator operator++(int) {
    PtrIterator tmp = *this;
    ++pos_;
    return tmp;
  }
  friend bool operator==(PtrIterator, PtrIterator) = default;

 private:
  const Value* const* pos_ = nullptr;
};

template <typename Value>
class SortedView {
 public:
  using const_iterator = PtrIterator<Value>;

  explicit SortedView(std::vector<const Value*> items)
      : items_(std::move(items)) {}

  const_iterator begin() const { return const_iterator(items_.data()); }
  const_iterator end() const {
    return const_iterator(items_.data() + items_.size());
  }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  std::vector<const Value*> items_;
};

}  // namespace detail

/// Key-sorted view of an unordered_map. Yields const references to the
/// map's own pair<const K, V> elements.
template <typename K, typename V, typename H, typename E, typename A>
detail::SortedView<typename std::unordered_map<K, V, H, E, A>::value_type>
sorted_view(const std::unordered_map<K, V, H, E, A>& map) {
  using Value = typename std::unordered_map<K, V, H, E, A>::value_type;
  std::vector<const Value*> items;
  items.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) items.push_back(&*it);
  std::sort(items.begin(), items.end(),
            [](const Value* a, const Value* b) { return a->first < b->first; });
  return detail::SortedView<Value>(std::move(items));
}

/// Value-sorted view of an unordered_set.
template <typename K, typename H, typename E, typename A>
detail::SortedView<K> sorted_view(const std::unordered_set<K, H, E, A>& set) {
  std::vector<const K*> items;
  items.reserve(set.size());
  for (auto it = set.begin(); it != set.end(); ++it) items.push_back(&*it);
  std::sort(items.begin(), items.end(),
            [](const K* a, const K* b) { return *a < *b; });
  return detail::SortedView<K>(std::move(items));
}

/// Sorted copy of a map's keys.
template <typename K, typename V, typename H, typename E, typename A>
std::vector<K> sorted_keys(const std::unordered_map<K, V, H, E, A>& map) {
  std::vector<K> keys;
  keys.reserve(map.size());
  for (auto it = map.begin(); it != map.end(); ++it) keys.push_back(it->first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Sorted copy of a set's elements.
template <typename K, typename H, typename E, typename A>
std::vector<K> sorted_keys(const std::unordered_set<K, H, E, A>& set) {
  std::vector<K> keys;
  keys.reserve(set.size());
  for (auto it = set.begin(); it != set.end(); ++it) keys.push_back(*it);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace bc::util
