// Lightweight assertion macros for the BarterCast libraries.
//
// BC_ASSERT is active in all build types: simulator correctness depends on
// internal invariants, and the cost of the checks is negligible next to the
// simulation work itself. BC_DASSERT compiles out in NDEBUG builds and is
// reserved for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace bc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "BC_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace bc::detail

#define BC_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::bc::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                \
  } while (false)

#define BC_ASSERT_MSG(expr, msg)                                   \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::bc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                              \
  } while (false)

#ifdef NDEBUG
// The expression stays syntactically checked and its operands count as used
// (sizeof is an unevaluated context), so variables referenced only from
// debug asserts do not trip -Wunused-variable/-Wunused-but-set-variable in
// release builds, and the macro cannot change odr-use between build types.
#define BC_DASSERT(expr) static_cast<void>(sizeof((expr) ? 1 : 0))
#else
#define BC_DASSERT(expr) BC_ASSERT(expr)
#endif
