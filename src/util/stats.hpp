// Streaming and batch statistics used by the analysis layer and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bc {

/// Welford online mean/variance accumulator. O(1) per observation.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample by linear interpolation between order statistics.
/// `q` in [0, 1]. Returns 0 for an empty sample. Copies and sorts; intended
/// for post-processing, not hot paths.
double percentile(std::span<const double> values, double q);

double mean(std::span<const double> values);
double median(std::span<const double> values);

/// Pearson correlation coefficient of two equally sized samples.
/// Returns 0 when either sample has zero variance or fewer than 2 points.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (ties resolved by average rank).
double spearman(std::span<const double> x, std::span<const double> y);

/// Least-squares fit y = a + b*x. Returns {a, b}; b = 0 for degenerate x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Assigns fractional ranks (1-based, ties averaged) to the sample.
std::vector<double> ranks(std::span<const double> values);

}  // namespace bc
