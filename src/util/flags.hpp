// Minimal command-line flag parser for the example/tool binaries.
//
// Supports --name=value and --name value forms, plus bare --name for
// booleans. Unknown flags are an error (typos should not silently run a
// different experiment). No global state: one Flags object per main().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bc {

class Flags {
 public:
  /// Parses argv; returns std::nullopt and prints a diagnostic to stderr on
  /// malformed input. `allowed` lists every legal flag name (without the
  /// leading dashes) and its help text.
  static std::optional<Flags> parse(
      int argc, const char* const* argv,
      const std::map<std::string, std::string>& allowed);

  /// Renders a usage block from the allowed-flag table.
  static std::string usage(const std::string& program,
                           const std::map<std::string, std::string>& allowed);

  bool has(const std::string& name) const;

  /// Typed accessors; return `fallback` when the flag is absent. A present
  /// flag with an unparsable value returns std::nullopt from the *_opt
  /// variants and `fallback` plus an error mark from the plain ones — use
  /// valid() after parsing values to detect that.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback);
  double get_double(const std::string& name, double fallback);
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// False if any typed accessor saw an unparsable value.
  bool valid() const { return valid_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  bool valid_ = true;
};

}  // namespace bc
