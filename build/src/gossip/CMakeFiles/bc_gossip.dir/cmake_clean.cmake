file(REMOVE_RECURSE
  "CMakeFiles/bc_gossip.dir/pss.cpp.o"
  "CMakeFiles/bc_gossip.dir/pss.cpp.o.d"
  "libbc_gossip.a"
  "libbc_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
