file(REMOVE_RECURSE
  "libbc_gossip.a"
)
