# Empty compiler generated dependencies file for bc_gossip.
# This may be replaced when dependencies are built.
