file(REMOVE_RECURSE
  "CMakeFiles/bc_net.dir/overlay.cpp.o"
  "CMakeFiles/bc_net.dir/overlay.cpp.o.d"
  "libbc_net.a"
  "libbc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
