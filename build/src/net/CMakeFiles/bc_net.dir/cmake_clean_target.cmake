file(REMOVE_RECURSE
  "libbc_net.a"
)
