# Empty dependencies file for bc_util.
# This may be replaced when dependencies are built.
