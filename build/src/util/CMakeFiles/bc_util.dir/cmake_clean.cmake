file(REMOVE_RECURSE
  "CMakeFiles/bc_util.dir/flags.cpp.o"
  "CMakeFiles/bc_util.dir/flags.cpp.o.d"
  "CMakeFiles/bc_util.dir/histogram.cpp.o"
  "CMakeFiles/bc_util.dir/histogram.cpp.o.d"
  "CMakeFiles/bc_util.dir/logging.cpp.o"
  "CMakeFiles/bc_util.dir/logging.cpp.o.d"
  "CMakeFiles/bc_util.dir/rng.cpp.o"
  "CMakeFiles/bc_util.dir/rng.cpp.o.d"
  "CMakeFiles/bc_util.dir/stats.cpp.o"
  "CMakeFiles/bc_util.dir/stats.cpp.o.d"
  "CMakeFiles/bc_util.dir/table.cpp.o"
  "CMakeFiles/bc_util.dir/table.cpp.o.d"
  "CMakeFiles/bc_util.dir/timeseries.cpp.o"
  "CMakeFiles/bc_util.dir/timeseries.cpp.o.d"
  "libbc_util.a"
  "libbc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
