
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bittorrent/bandwidth.cpp" "src/bittorrent/CMakeFiles/bc_bt.dir/bandwidth.cpp.o" "gcc" "src/bittorrent/CMakeFiles/bc_bt.dir/bandwidth.cpp.o.d"
  "/root/repo/src/bittorrent/choker.cpp" "src/bittorrent/CMakeFiles/bc_bt.dir/choker.cpp.o" "gcc" "src/bittorrent/CMakeFiles/bc_bt.dir/choker.cpp.o.d"
  "/root/repo/src/bittorrent/piece_picker.cpp" "src/bittorrent/CMakeFiles/bc_bt.dir/piece_picker.cpp.o" "gcc" "src/bittorrent/CMakeFiles/bc_bt.dir/piece_picker.cpp.o.d"
  "/root/repo/src/bittorrent/swarm.cpp" "src/bittorrent/CMakeFiles/bc_bt.dir/swarm.cpp.o" "gcc" "src/bittorrent/CMakeFiles/bc_bt.dir/swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bartercast/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
