file(REMOVE_RECURSE
  "libbc_bt.a"
)
