file(REMOVE_RECURSE
  "CMakeFiles/bc_bt.dir/bandwidth.cpp.o"
  "CMakeFiles/bc_bt.dir/bandwidth.cpp.o.d"
  "CMakeFiles/bc_bt.dir/choker.cpp.o"
  "CMakeFiles/bc_bt.dir/choker.cpp.o.d"
  "CMakeFiles/bc_bt.dir/piece_picker.cpp.o"
  "CMakeFiles/bc_bt.dir/piece_picker.cpp.o.d"
  "CMakeFiles/bc_bt.dir/swarm.cpp.o"
  "CMakeFiles/bc_bt.dir/swarm.cpp.o.d"
  "libbc_bt.a"
  "libbc_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
