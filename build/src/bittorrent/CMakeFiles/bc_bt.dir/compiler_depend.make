# Empty compiler generated dependencies file for bc_bt.
# This may be replaced when dependencies are built.
