file(REMOVE_RECURSE
  "CMakeFiles/bc_community.dir/behavior.cpp.o"
  "CMakeFiles/bc_community.dir/behavior.cpp.o.d"
  "CMakeFiles/bc_community.dir/metrics.cpp.o"
  "CMakeFiles/bc_community.dir/metrics.cpp.o.d"
  "CMakeFiles/bc_community.dir/simulator.cpp.o"
  "CMakeFiles/bc_community.dir/simulator.cpp.o.d"
  "libbc_community.a"
  "libbc_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
