# Empty compiler generated dependencies file for bc_community.
# This may be replaced when dependencies are built.
