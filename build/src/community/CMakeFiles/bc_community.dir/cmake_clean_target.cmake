file(REMOVE_RECURSE
  "libbc_community.a"
)
