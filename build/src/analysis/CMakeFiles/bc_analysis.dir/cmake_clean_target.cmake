file(REMOVE_RECURSE
  "libbc_analysis.a"
)
