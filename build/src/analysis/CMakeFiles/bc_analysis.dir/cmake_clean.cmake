file(REMOVE_RECURSE
  "CMakeFiles/bc_analysis.dir/deployment_observer.cpp.o"
  "CMakeFiles/bc_analysis.dir/deployment_observer.cpp.o.d"
  "CMakeFiles/bc_analysis.dir/experiment.cpp.o"
  "CMakeFiles/bc_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/bc_analysis.dir/plot.cpp.o"
  "CMakeFiles/bc_analysis.dir/plot.cpp.o.d"
  "libbc_analysis.a"
  "libbc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
