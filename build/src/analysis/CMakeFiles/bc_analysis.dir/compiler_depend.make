# Empty compiler generated dependencies file for bc_analysis.
# This may be replaced when dependencies are built.
