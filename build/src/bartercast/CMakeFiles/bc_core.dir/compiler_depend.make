# Empty compiler generated dependencies file for bc_core.
# This may be replaced when dependencies are built.
