file(REMOVE_RECURSE
  "CMakeFiles/bc_core.dir/codec.cpp.o"
  "CMakeFiles/bc_core.dir/codec.cpp.o.d"
  "CMakeFiles/bc_core.dir/history.cpp.o"
  "CMakeFiles/bc_core.dir/history.cpp.o.d"
  "CMakeFiles/bc_core.dir/message.cpp.o"
  "CMakeFiles/bc_core.dir/message.cpp.o.d"
  "CMakeFiles/bc_core.dir/node.cpp.o"
  "CMakeFiles/bc_core.dir/node.cpp.o.d"
  "CMakeFiles/bc_core.dir/persistence.cpp.o"
  "CMakeFiles/bc_core.dir/persistence.cpp.o.d"
  "CMakeFiles/bc_core.dir/policy.cpp.o"
  "CMakeFiles/bc_core.dir/policy.cpp.o.d"
  "CMakeFiles/bc_core.dir/reputation.cpp.o"
  "CMakeFiles/bc_core.dir/reputation.cpp.o.d"
  "CMakeFiles/bc_core.dir/service.cpp.o"
  "CMakeFiles/bc_core.dir/service.cpp.o.d"
  "CMakeFiles/bc_core.dir/shared_history.cpp.o"
  "CMakeFiles/bc_core.dir/shared_history.cpp.o.d"
  "libbc_core.a"
  "libbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
