
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bartercast/codec.cpp" "src/bartercast/CMakeFiles/bc_core.dir/codec.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/codec.cpp.o.d"
  "/root/repo/src/bartercast/history.cpp" "src/bartercast/CMakeFiles/bc_core.dir/history.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/history.cpp.o.d"
  "/root/repo/src/bartercast/message.cpp" "src/bartercast/CMakeFiles/bc_core.dir/message.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/message.cpp.o.d"
  "/root/repo/src/bartercast/node.cpp" "src/bartercast/CMakeFiles/bc_core.dir/node.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/node.cpp.o.d"
  "/root/repo/src/bartercast/persistence.cpp" "src/bartercast/CMakeFiles/bc_core.dir/persistence.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/persistence.cpp.o.d"
  "/root/repo/src/bartercast/policy.cpp" "src/bartercast/CMakeFiles/bc_core.dir/policy.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/policy.cpp.o.d"
  "/root/repo/src/bartercast/reputation.cpp" "src/bartercast/CMakeFiles/bc_core.dir/reputation.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/reputation.cpp.o.d"
  "/root/repo/src/bartercast/service.cpp" "src/bartercast/CMakeFiles/bc_core.dir/service.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/service.cpp.o.d"
  "/root/repo/src/bartercast/shared_history.cpp" "src/bartercast/CMakeFiles/bc_core.dir/shared_history.cpp.o" "gcc" "src/bartercast/CMakeFiles/bc_core.dir/shared_history.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
