# Empty dependencies file for bc_identity.
# This may be replaced when dependencies are built.
