file(REMOVE_RECURSE
  "libbc_identity.a"
)
