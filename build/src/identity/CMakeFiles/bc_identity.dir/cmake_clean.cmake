file(REMOVE_RECURSE
  "CMakeFiles/bc_identity.dir/identity.cpp.o"
  "CMakeFiles/bc_identity.dir/identity.cpp.o.d"
  "CMakeFiles/bc_identity.dir/stranger.cpp.o"
  "CMakeFiles/bc_identity.dir/stranger.cpp.o.d"
  "libbc_identity.a"
  "libbc_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
