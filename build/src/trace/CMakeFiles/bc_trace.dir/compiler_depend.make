# Empty compiler generated dependencies file for bc_trace.
# This may be replaced when dependencies are built.
