file(REMOVE_RECURSE
  "libbc_trace.a"
)
