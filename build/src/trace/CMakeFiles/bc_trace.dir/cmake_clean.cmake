file(REMOVE_RECURSE
  "CMakeFiles/bc_trace.dir/csv.cpp.o"
  "CMakeFiles/bc_trace.dir/csv.cpp.o.d"
  "CMakeFiles/bc_trace.dir/deployment.cpp.o"
  "CMakeFiles/bc_trace.dir/deployment.cpp.o.d"
  "CMakeFiles/bc_trace.dir/generator.cpp.o"
  "CMakeFiles/bc_trace.dir/generator.cpp.o.d"
  "CMakeFiles/bc_trace.dir/trace.cpp.o"
  "CMakeFiles/bc_trace.dir/trace.cpp.o.d"
  "libbc_trace.a"
  "libbc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
