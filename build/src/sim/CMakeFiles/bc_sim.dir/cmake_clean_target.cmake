file(REMOVE_RECURSE
  "libbc_sim.a"
)
