file(REMOVE_RECURSE
  "CMakeFiles/bc_sim.dir/engine.cpp.o"
  "CMakeFiles/bc_sim.dir/engine.cpp.o.d"
  "libbc_sim.a"
  "libbc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
