file(REMOVE_RECURSE
  "libbc_graph.a"
)
