file(REMOVE_RECURSE
  "CMakeFiles/bc_graph.dir/flow_graph.cpp.o"
  "CMakeFiles/bc_graph.dir/flow_graph.cpp.o.d"
  "CMakeFiles/bc_graph.dir/maxflow.cpp.o"
  "CMakeFiles/bc_graph.dir/maxflow.cpp.o.d"
  "libbc_graph.a"
  "libbc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
