# Empty dependencies file for bc_graph.
# This may be replaced when dependencies are built.
