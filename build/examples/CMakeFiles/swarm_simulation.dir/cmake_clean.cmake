file(REMOVE_RECURSE
  "CMakeFiles/swarm_simulation.dir/swarm_simulation.cpp.o"
  "CMakeFiles/swarm_simulation.dir/swarm_simulation.cpp.o.d"
  "swarm_simulation"
  "swarm_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
