# Empty dependencies file for swarm_simulation.
# This may be replaced when dependencies are built.
