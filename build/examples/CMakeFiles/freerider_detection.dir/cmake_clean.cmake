file(REMOVE_RECURSE
  "CMakeFiles/freerider_detection.dir/freerider_detection.cpp.o"
  "CMakeFiles/freerider_detection.dir/freerider_detection.cpp.o.d"
  "freerider_detection"
  "freerider_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freerider_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
