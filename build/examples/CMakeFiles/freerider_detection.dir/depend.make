# Empty dependencies file for freerider_detection.
# This may be replaced when dependencies are built.
