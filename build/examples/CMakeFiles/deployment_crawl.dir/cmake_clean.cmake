file(REMOVE_RECURSE
  "CMakeFiles/deployment_crawl.dir/deployment_crawl.cpp.o"
  "CMakeFiles/deployment_crawl.dir/deployment_crawl.cpp.o.d"
  "deployment_crawl"
  "deployment_crawl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_crawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
