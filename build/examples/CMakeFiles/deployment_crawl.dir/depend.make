# Empty dependencies file for deployment_crawl.
# This may be replaced when dependencies are built.
