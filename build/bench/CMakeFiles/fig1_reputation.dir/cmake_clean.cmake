file(REMOVE_RECURSE
  "CMakeFiles/fig1_reputation.dir/fig1_reputation.cpp.o"
  "CMakeFiles/fig1_reputation.dir/fig1_reputation.cpp.o.d"
  "fig1_reputation"
  "fig1_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
