# Empty compiler generated dependencies file for fig1_reputation.
# This may be replaced when dependencies are built.
