file(REMOVE_RECURSE
  "CMakeFiles/micro_bartercast.dir/micro_bartercast.cpp.o"
  "CMakeFiles/micro_bartercast.dir/micro_bartercast.cpp.o.d"
  "micro_bartercast"
  "micro_bartercast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bartercast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
