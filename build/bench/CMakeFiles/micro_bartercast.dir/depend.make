# Empty dependencies file for micro_bartercast.
# This may be replaced when dependencies are built.
