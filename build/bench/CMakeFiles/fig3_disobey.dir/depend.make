# Empty dependencies file for fig3_disobey.
# This may be replaced when dependencies are built.
