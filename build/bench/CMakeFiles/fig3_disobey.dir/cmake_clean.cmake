file(REMOVE_RECURSE
  "CMakeFiles/fig3_disobey.dir/fig3_disobey.cpp.o"
  "CMakeFiles/fig3_disobey.dir/fig3_disobey.cpp.o.d"
  "fig3_disobey"
  "fig3_disobey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_disobey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
