file(REMOVE_RECURSE
  "CMakeFiles/ablation_whitewash.dir/ablation_whitewash.cpp.o"
  "CMakeFiles/ablation_whitewash.dir/ablation_whitewash.cpp.o.d"
  "ablation_whitewash"
  "ablation_whitewash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_whitewash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
