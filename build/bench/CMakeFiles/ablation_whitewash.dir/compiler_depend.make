# Empty compiler generated dependencies file for ablation_whitewash.
# This may be replaced when dependencies are built.
