# Empty dependencies file for fig2_policies.
# This may be replaced when dependencies are built.
