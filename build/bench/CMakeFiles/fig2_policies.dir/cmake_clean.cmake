file(REMOVE_RECURSE
  "CMakeFiles/fig2_policies.dir/fig2_policies.cpp.o"
  "CMakeFiles/fig2_policies.dir/fig2_policies.cpp.o.d"
  "fig2_policies"
  "fig2_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
