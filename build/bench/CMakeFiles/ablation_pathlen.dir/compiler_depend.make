# Empty compiler generated dependencies file for ablation_pathlen.
# This may be replaced when dependencies are built.
