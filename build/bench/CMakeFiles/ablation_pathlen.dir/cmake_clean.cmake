file(REMOVE_RECURSE
  "CMakeFiles/ablation_pathlen.dir/ablation_pathlen.cpp.o"
  "CMakeFiles/ablation_pathlen.dir/ablation_pathlen.cpp.o.d"
  "ablation_pathlen"
  "ablation_pathlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pathlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
