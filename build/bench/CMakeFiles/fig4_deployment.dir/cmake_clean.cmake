file(REMOVE_RECURSE
  "CMakeFiles/fig4_deployment.dir/fig4_deployment.cpp.o"
  "CMakeFiles/fig4_deployment.dir/fig4_deployment.cpp.o.d"
  "fig4_deployment"
  "fig4_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
