# Empty dependencies file for fig4_deployment.
# This may be replaced when dependencies are built.
