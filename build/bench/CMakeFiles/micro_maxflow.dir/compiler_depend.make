# Empty compiler generated dependencies file for micro_maxflow.
# This may be replaced when dependencies are built.
