file(REMOVE_RECURSE
  "CMakeFiles/micro_maxflow.dir/micro_maxflow.cpp.o"
  "CMakeFiles/micro_maxflow.dir/micro_maxflow.cpp.o.d"
  "micro_maxflow"
  "micro_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
