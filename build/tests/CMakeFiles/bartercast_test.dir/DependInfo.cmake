
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bartercast/codec_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/codec_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/codec_test.cpp.o.d"
  "/root/repo/tests/bartercast/fuzz_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/fuzz_test.cpp.o.d"
  "/root/repo/tests/bartercast/history_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/history_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/history_test.cpp.o.d"
  "/root/repo/tests/bartercast/message_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/message_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/message_test.cpp.o.d"
  "/root/repo/tests/bartercast/node_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/node_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/node_test.cpp.o.d"
  "/root/repo/tests/bartercast/persistence_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/persistence_test.cpp.o.d"
  "/root/repo/tests/bartercast/policy_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/policy_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/policy_test.cpp.o.d"
  "/root/repo/tests/bartercast/reputation_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/reputation_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/reputation_test.cpp.o.d"
  "/root/repo/tests/bartercast/shared_history_test.cpp" "tests/CMakeFiles/bartercast_test.dir/bartercast/shared_history_test.cpp.o" "gcc" "tests/CMakeFiles/bartercast_test.dir/bartercast/shared_history_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/bc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/bc_community.dir/DependInfo.cmake"
  "/root/repo/build/src/identity/CMakeFiles/bc_identity.dir/DependInfo.cmake"
  "/root/repo/build/src/bittorrent/CMakeFiles/bc_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/bartercast/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/bc_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/bc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
