file(REMOVE_RECURSE
  "CMakeFiles/bartercast_test.dir/bartercast/codec_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/codec_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/fuzz_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/fuzz_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/history_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/history_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/message_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/message_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/node_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/node_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/persistence_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/persistence_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/policy_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/policy_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/reputation_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/reputation_test.cpp.o.d"
  "CMakeFiles/bartercast_test.dir/bartercast/shared_history_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast/shared_history_test.cpp.o.d"
  "bartercast_test"
  "bartercast_test.pdb"
  "bartercast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bartercast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
