# Empty dependencies file for bittorrent_test.
# This may be replaced when dependencies are built.
