file(REMOVE_RECURSE
  "CMakeFiles/bittorrent_test.dir/bittorrent/bandwidth_test.cpp.o"
  "CMakeFiles/bittorrent_test.dir/bittorrent/bandwidth_test.cpp.o.d"
  "CMakeFiles/bittorrent_test.dir/bittorrent/bitfield_test.cpp.o"
  "CMakeFiles/bittorrent_test.dir/bittorrent/bitfield_test.cpp.o.d"
  "CMakeFiles/bittorrent_test.dir/bittorrent/choker_test.cpp.o"
  "CMakeFiles/bittorrent_test.dir/bittorrent/choker_test.cpp.o.d"
  "CMakeFiles/bittorrent_test.dir/bittorrent/piece_picker_test.cpp.o"
  "CMakeFiles/bittorrent_test.dir/bittorrent/piece_picker_test.cpp.o.d"
  "CMakeFiles/bittorrent_test.dir/bittorrent/swarm_fuzz_test.cpp.o"
  "CMakeFiles/bittorrent_test.dir/bittorrent/swarm_fuzz_test.cpp.o.d"
  "CMakeFiles/bittorrent_test.dir/bittorrent/swarm_test.cpp.o"
  "CMakeFiles/bittorrent_test.dir/bittorrent/swarm_test.cpp.o.d"
  "bittorrent_test"
  "bittorrent_test.pdb"
  "bittorrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bittorrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
