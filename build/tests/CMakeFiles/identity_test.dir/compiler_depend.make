# Empty compiler generated dependencies file for identity_test.
# This may be replaced when dependencies are built.
