file(REMOVE_RECURSE
  "CMakeFiles/identity_test.dir/identity/identity_test.cpp.o"
  "CMakeFiles/identity_test.dir/identity/identity_test.cpp.o.d"
  "CMakeFiles/identity_test.dir/identity/stranger_test.cpp.o"
  "CMakeFiles/identity_test.dir/identity/stranger_test.cpp.o.d"
  "identity_test"
  "identity_test.pdb"
  "identity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
