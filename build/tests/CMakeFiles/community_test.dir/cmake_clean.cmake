file(REMOVE_RECURSE
  "CMakeFiles/community_test.dir/community/adversary_test.cpp.o"
  "CMakeFiles/community_test.dir/community/adversary_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/behavior_test.cpp.o"
  "CMakeFiles/community_test.dir/community/behavior_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/conservation_test.cpp.o"
  "CMakeFiles/community_test.dir/community/conservation_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/late_metrics_test.cpp.o"
  "CMakeFiles/community_test.dir/community/late_metrics_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/metrics_test.cpp.o"
  "CMakeFiles/community_test.dir/community/metrics_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/persistence_integration_test.cpp.o"
  "CMakeFiles/community_test.dir/community/persistence_integration_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/simulator_test.cpp.o"
  "CMakeFiles/community_test.dir/community/simulator_test.cpp.o.d"
  "community_test"
  "community_test.pdb"
  "community_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
