# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/gossip_test[1]_include.cmake")
include("/root/repo/build/tests/bartercast_test[1]_include.cmake")
include("/root/repo/build/tests/bittorrent_test[1]_include.cmake")
include("/root/repo/build/tests/community_test[1]_include.cmake")
include("/root/repo/build/tests/identity_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
