// Quickstart: the BarterCast public API in ~60 lines.
//
// Three peers barter; Alice learns about Carol only through Bob's gossip,
// and the maxflow metric turns that indirect knowledge into a reputation
// that is bounded by what Alice directly received from Bob.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bartercast/node.hpp"

using namespace bc;

int main() {
  constexpr PeerId kAlice = 0, kBob = 1, kCarol = 2;

  bartercast::NodeConfig cfg;
  cfg.reputation.arctan_unit = mib(100);  // reputation knee at ~100 MiB

  bartercast::Node alice(kAlice, cfg);
  bartercast::Node bob(kBob, cfg);
  bartercast::Node carol(kCarol, cfg);

  // Direct experience: Bob uploads 400 MiB to Alice; Carol uploads
  // 300 MiB to Bob (Alice never talks to Carol directly).
  Seconds now = 0.0;
  bob.on_bytes_sent(kAlice, mib(400), now);
  alice.on_bytes_received(kBob, mib(400), now);
  carol.on_bytes_sent(kBob, mib(300), now);
  bob.on_bytes_received(kCarol, mib(300), now);

  // Gossip: Bob sends Alice his BarterCast message (top-Nh uploaders plus
  // most recent peers from his private history).
  now += 60.0;
  alice.receive_message(bob.make_message(now));

  std::printf("Alice's subjective reputations (Equation 1):\n");
  std::printf("  R_alice(bob)   = %+.3f   (direct: received 400 MiB)\n",
              alice.reputation(kBob));
  std::printf("  R_alice(carol) = %+.3f   (indirect via Bob's message)\n",
              alice.reputation(kCarol));

  // The containment property: Carol's reputation at Alice is bounded by the
  // service Alice received from Bob, however much Carol (or Bob) claims.
  bartercast::BarterCastMessage inflated = bob.make_message(now);
  for (auto& r : inflated.records) {
    if (r.other == kCarol) r.other_to_subject = gib(1000);  // wild claim
  }
  alice.receive_message(inflated);
  std::printf(
      "  R_alice(carol) = %+.3f   after a 1000 GiB claim "
      "(capped by Bob->Alice)\n",
      alice.reputation(kCarol));
  return 0;
}
