// Example: a Tribler-style instrumented observer (the paper's §5.5 setup).
//
// Synthesizes a deployment population, replays every peer's BarterCast
// message through an observer node, and prints what the observer learns:
// the population's contribution imbalance and the reputation it assigns
// each peer from its own subjective viewpoint.
//
// Build & run:  ./build/examples/deployment_crawl
#include <algorithm>
#include <cstdio>

#include "analysis/deployment_observer.hpp"
#include "trace/deployment.hpp"
#include "util/table.hpp"

using namespace bc;

int main() {
  trace::DeploymentConfig dcfg;
  dcfg.seed = 123;
  dcfg.num_peers = 800;
  const auto population = trace::generate_deployment(dcfg);

  analysis::ObserverConfig ocfg;
  ocfg.seed = 124;
  ocfg.direct_partners = 120;
  const auto result = analysis::run_observer(population, ocfg);

  std::printf("observer logged %zu messages (%zu records applied)\n\n",
              result.messages_logged, result.records_applied);

  // Contribution imbalance, Figure 4(a)-style.
  std::vector<Bytes> sorted = result.net_contribution;
  std::sort(sorted.begin(), sorted.end());
  std::printf("population net contribution (sorted sample):\n");
  Table t({"percentile", "upload - download"});
  for (int pct : {1, 10, 25, 50, 75, 90, 99}) {
    const auto idx = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(sorted.size() - 1));
    t.add_row({std::to_string(pct), fmt_bytes(sorted[idx])});
  }
  std::printf("%s", t.to_string().c_str());

  // Reputation distribution at the observer, Figure 4(b)-style.
  std::printf("\nreputation as computed by the observer:\n");
  std::printf("  negative: %4.1f%%\n", 100.0 * result.fraction_negative());
  std::printf("  ~zero:    %4.1f%%\n", 100.0 * result.fraction_zero());
  std::printf("  positive: %4.1f%%\n", 100.0 * result.fraction_positive());

  // The most extreme peers from the observer's point of view.
  std::vector<PeerId> order(population.num_peers);
  for (PeerId i = 0; i < population.num_peers; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](PeerId a, PeerId b) {
    return result.reputations[a] < result.reputations[b];
  });
  std::printf("\nworst and best peers at the observer:\n");
  Table extremes({"peer", "reputation", "net contribution"});
  for (std::size_t i = 0; i < 3; ++i) {
    const PeerId p = order[i];
    extremes.add_row({std::to_string(p), fmt(result.reputations[p], 3),
                      fmt_bytes(result.net_contribution[p])});
  }
  for (std::size_t i = population.num_peers - 3; i < population.num_peers;
       ++i) {
    const PeerId p = order[i];
    extremes.add_row({std::to_string(p), fmt(result.reputations[p], 3),
                      fmt_bytes(result.net_contribution[p])});
  }
  std::printf("%s", extremes.to_string().c_str());
  return 0;
}
