// Example: trace tooling — generate, save, reload, inspect.
//
// Shows the trace workflow a researcher would use to swap in a real tracker
// scrape: generate (or obtain) a trace, persist it as CSV, reload it, and
// print summary statistics. The CSV schema is documented in
// src/trace/csv.hpp; a real filelist-style scrape converted to that schema
// drops into the simulator unchanged.
//
// Usage:  ./build/examples/trace_tools [output.csv]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "trace/csv.hpp"
#include "trace/generator.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace bc;

int main(int argc, char** argv) {
  trace::GeneratorConfig cfg;
  cfg.seed = 2026;
  cfg.num_peers = 60;
  cfg.num_swarms = 8;
  cfg.duration = 3.0 * kDay;
  const trace::Trace original = trace::generate(cfg);

  // Persist and reload — the round trip must be lossless.
  const std::string path = argc > 1 ? argv[1] : "/tmp/bartercast_trace.csv";
  {
    std::ofstream out(path);
    trace::write_csv(original, out);
  }
  std::ifstream in(path);
  std::string error;
  const auto reloaded = trace::read_csv(in, &error);
  if (!reloaded.has_value()) {
    std::fprintf(stderr, "reload failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("trace written to %s and reloaded (%zu peers, %zu files, "
              "%zu requests)\n\n",
              path.c_str(), reloaded->peers.size(), reloaded->files.size(),
              reloaded->requests.size());

  // Summaries a researcher would sanity-check before a run.
  BC_ASSERT(reloaded->duration > 0.0);
  OnlineStats uptime, sessions, size;
  for (const auto& p : reloaded->peers) {
    uptime.add(p.total_uptime() / reloaded->duration);
    sessions.add(static_cast<double>(p.sessions.size()));
  }
  for (const auto& f : reloaded->files) size.add(to_mib(f.size));

  Table t({"statistic", "mean", "min", "max"});
  t.add_row({"peer availability", fmt(uptime.mean(), 2), fmt(uptime.min(), 2),
             fmt(uptime.max(), 2)});
  t.add_row({"sessions per peer", fmt(sessions.mean(), 1),
             fmt(sessions.min(), 0), fmt(sessions.max(), 0)});
  t.add_row({"file size (MiB)", fmt(size.mean(), 0), fmt(size.min(), 0),
             fmt(size.max(), 0)});
  std::printf("%s", t.to_string().c_str());

  std::vector<int> per_swarm(reloaded->files.size(), 0);
  for (const auto& r : reloaded->requests) ++per_swarm[r.swarm];
  std::printf("\nrequests per swarm (Zipf popularity):\n");
  Table pop({"swarm", "size", "requests"});
  for (const auto& f : reloaded->files) {
    pop.add_row({std::to_string(f.id), fmt_bytes(f.size),
                 std::to_string(per_swarm[f.id])});
  }
  std::printf("%s", pop.to_string().c_str());
  return 0;
}
