// Tool: run an arbitrary community scenario from the command line.
//
// Everything the figure benches hard-code is exposed as a flag here, so a
// researcher can explore the parameter space (or replay a real trace CSV)
// without writing C++.
//
// Examples:
//   run_scenario --peers 60 --swarms 8 --days 3 --policy ban --delta -0.5
//   run_scenario --trace mytrace.csv --policy rank --liars 0.2
//   run_scenario --policy none --csv   # machine-readable output
#include <cstdio>
#include <fstream>
#include <iostream>

#include "analysis/experiment.hpp"
#include "community/simulator.hpp"
#include "trace/csv.hpp"
#include "trace/generator.hpp"
#include "util/flags.hpp"

using namespace bc;

namespace {

const std::map<std::string, std::string> kFlags = {
    {"help", "print this help"},
    {"seed", "random seed (default 1)"},
    {"peers", "number of trace peers (default 100)"},
    {"swarms", "number of swarms (default 10)"},
    {"days", "trace duration in days (default 7)"},
    {"trace", "load a trace CSV instead of generating one"},
    {"save-trace", "write the generated trace to this CSV path"},
    {"policy", "none | rank | ban (default none)"},
    {"delta", "ban threshold (default -0.5)"},
    {"freeriders", "freerider fraction (default 0.5)"},
    {"ignorers", "fraction ignoring the message protocol (default 0)"},
    {"liars", "fraction lying about contributions (default 0)"},
    {"seed-hours", "sharer seeding duration in hours (default 10)"},
    {"population", "behavior spec overriding the fraction flags, e.g. "
                   "\"sharer:0.5,lazy:0.3,sybil:0.2\""},
    {"backend", "reputation backend: maxflow (default) or gossip"},
    {"csv", "emit CSV tables instead of aligned text"},
};

int fail_usage(const char* argv0) {
  std::fputs(Flags::usage(argv0, kFlags).c_str(), stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = Flags::parse(argc, argv, kFlags);
  if (!parsed.has_value()) return fail_usage(argv[0]);
  Flags flags = std::move(*parsed);
  if (flags.get_bool("help", false)) return fail_usage(argv[0]);

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  // --- trace ---------------------------------------------------------
  trace::Trace tr;
  if (flags.has("trace")) {
    std::ifstream in(flags.get("trace", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", flags.get("trace", "").c_str());
      return 1;
    }
    std::string error;
    auto loaded = trace::read_csv(in, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "bad trace: %s\n", error.c_str());
      return 1;
    }
    tr = std::move(*loaded);
  } else {
    trace::GeneratorConfig tcfg;
    tcfg.seed = seed;
    tcfg.num_peers =
        static_cast<std::size_t>(flags.get_int("peers", 100));
    tcfg.num_swarms =
        static_cast<std::size_t>(flags.get_int("swarms", 10));
    tcfg.duration = flags.get_double("days", 7.0) * kDay;
    tr = trace::generate(tcfg);
  }
  if (flags.has("save-trace")) {
    std::ofstream out(flags.get("save-trace", ""));
    trace::write_csv(tr, out);
  }

  // --- scenario ------------------------------------------------------
  community::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.freerider_fraction = flags.get_double("freeriders", 0.5);
  cfg.ignorer_fraction = flags.get_double("ignorers", 0.0);
  cfg.liar_fraction = flags.get_double("liars", 0.0);
  cfg.seed_duration = flags.get_double("seed-hours", 10.0) * kHour;
  const std::string policy = flags.get("policy", "none");
  if (policy == "none") {
    cfg.policy = bartercast::ReputationPolicy::none();
  } else if (policy == "rank") {
    cfg.policy = bartercast::ReputationPolicy::rank();
  } else if (policy == "ban") {
    cfg.policy = bartercast::ReputationPolicy::ban(
        flags.get_double("delta", -0.5));
  } else {
    std::fprintf(stderr, "unknown policy '%s'\n", policy.c_str());
    return fail_usage(argv[0]);
  }
  cfg.population = flags.get("population", "");
  const std::string backend = flags.get("backend", "maxflow");
  const auto backend_kind = bartercast::parse_backend(backend);
  if (!backend_kind.has_value()) {
    std::fprintf(stderr, "unknown --backend '%s'\n", backend.c_str());
    return fail_usage(argv[0]);
  }
  cfg.node.backend = *backend_kind;
  if (!flags.valid()) return fail_usage(argv[0]);
  const std::string config_error = cfg.validate();
  if (!config_error.empty()) {
    std::fprintf(stderr, "bad scenario: %s\n", config_error.c_str());
    return 1;
  }

  // --- run -----------------------------------------------------------
  community::CommunitySimulator sim(std::move(tr), cfg);
  sim.run();
  const auto& m = sim.metrics();
  const bool csv = flags.get_bool("csv", false);
  auto emit = [&](const Table& t) {
    std::cout << (csv ? t.to_csv() : t.to_string());
  };

  std::printf("policy=%s peers=%zu swarms=%zu duration=%.1fd\n",
              cfg.policy.name().c_str(), sim.num_trace_peers(),
              sim.trace().files.size(), days(sim.trace().duration));

  std::printf("\nclass download speeds over time:\n");
  emit(analysis::speed_table(m, kDay));
  std::printf("\nsystem reputation over time:\n");
  emit(analysis::reputation_table(m, kDay));

  const double sharers = m.late_class_speed(false) / 1024.0;
  const double freeriders = m.late_class_speed(true) / 1024.0;
  std::printf("\nlate-window speeds: sharers %.0f KiB/s, freeriders %.0f "
              "KiB/s (ratio %.2f)\n",
              sharers, freeriders,
              sharers > 0.0 ? freeriders / sharers : 0.0);
  std::printf("reputation/contribution correlation: pearson %.3f, "
              "spearman %.3f\n",
              analysis::contribution_correlation(m),
              analysis::contribution_rank_correlation(m));
  std::printf("messages: %llu sent, %llu received, %llu records applied\n",
              static_cast<unsigned long long>(m.messages.messages_sent),
              static_cast<unsigned long long>(m.messages.messages_received),
              static_cast<unsigned long long>(m.messages.records_applied));
  return 0;
}
