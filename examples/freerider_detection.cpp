// Example: detecting lazy freeriders in a community.
//
// Runs a one-day community with no penalty policy and shows how each peer's
// BarterCast reputation separates the classes — the mechanism the paper's
// Figure 1 demonstrates — including the ROC-style detection quality a
// downstream integrator would care about: if you banned the bottom-k peers
// by reputation, how many would actually be freeriders?
//
// Build & run:  ./build/examples/freerider_detection
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"

using namespace bc;

int main() {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 99;
  tcfg.num_peers = 40;
  tcfg.num_swarms = 5;
  tcfg.duration = 2.0 * kDay;
  tcfg.file_size_max = mib(800);

  community::ScenarioConfig cfg;
  cfg.seed = 99;
  cfg.policy = bartercast::ReputationPolicy::none();  // observe only

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const auto& m = sim.metrics();

  // Rank peers by final system reputation, worst first.
  auto points = analysis::contribution_points(m);
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) {
              return a.system_reputation < b.system_reputation;
            });

  std::printf("peers ranked by BarterCast system reputation (worst first):\n");
  Table t({"rank", "peer", "reputation", "net_GiB", "actually"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    t.add_row({std::to_string(i + 1), std::to_string(points[i].peer),
               fmt(points[i].system_reputation, 4),
               fmt(points[i].net_contribution_gib, 2),
               points[i].freerider ? "freerider" : "sharer"});
  }
  std::printf("%s", t.to_string().c_str());

  // Detection quality at each cutoff.
  std::size_t total_freeriders = 0;
  for (const auto& p : points) total_freeriders += p.freerider ? 1u : 0u;
  std::printf("\ndetection quality (ban bottom-k by reputation):\n");
  Table q({"k", "freeriders_caught", "precision", "recall"});
  for (std::size_t k : {5ul, 10ul, 15ul, 20ul}) {
    std::size_t caught = 0;
    for (std::size_t i = 0; i < k && i < points.size(); ++i) {
      caught += points[i].freerider ? 1u : 0u;
    }
    const double kd = static_cast<double>(k);
    // bc-analyze: allow(V2,V3) -- caught <= k <= 20, exact small counts; k is drawn from {5,10,15,20}, never zero
    const double precision = static_cast<double>(caught) / kd;
    // bc-analyze: allow(V3) -- total_freeriders <= points.size(): a small exact count, fits double exactly
    const double fr = static_cast<double>(total_freeriders);
    // bc-analyze: allow(V2,V3) -- caught is a small exact count; the scenario always seeds freeriders, so fr > 0
    const double recall = static_cast<double>(caught) / fr;
    q.add_row({std::to_string(k), std::to_string(caught), fmt(precision, 2),
               fmt(recall, 2)});
  }
  std::printf("%s", q.to_string().c_str());
  std::printf("\ncorrelation(reputation, net contribution): %.3f\n",
              analysis::contribution_correlation(m));
  return 0;
}
