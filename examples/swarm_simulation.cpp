// Example: a small trace-driven community simulation.
//
// Generates a 2-day synthetic trace (30 peers, 4 swarms), runs the full
// stack (BitTorrent + PSS + BarterCast + ban policy) and prints the
// per-class download speeds and reputations over time.
//
// Build & run:  ./build/examples/swarm_simulation
//   --validate      turn on the bc::check invariant audits for the whole
//                   run (ledger conservation per round, Eq. 1 bounds at
//                   the end); any violation aborts with a report. Validate
//                   builds (-DBARTERCAST_VALIDATE=ON) audit by default.
//   --metrics-out=F write the obs metrics registry + profiling sites as
//                   JSON to F at end of run (implies --profile).
//   --metrics-csv=F write the counters/gauges/histogram buckets as CSV.
//   --trace-out=F   record a sim-time Chrome trace (engine events, gossip
//                   exchanges, choke rescans, counter tracks) and write it
//                   to F; open in chrome://tracing or ui.perfetto.dev.
//   --metrics-stream=F  append one NDJSON line of windowed metric deltas
//                   per snapshot interval of sim time to F (tail-able
//                   mid-run; see src/obs/stream.hpp for the schema).
//   --trace-ring=N  flight-recorder mode: keep only the most recent N
//                   trace events (implies --trace-out semantics for the
//                   dump). SIGUSR1 requests a mid-run dump of the ring to
//                   the --trace-out path; a failed invariant audit dumps
//                   it automatically before aborting.
//   --profile       enable the scoped wall-time profiler and print the
//                   per-site report (maxflow/gossip/choker attribution).
//   --threads=N     worker threads for the batch reputation sweeps
//                   (default 1 = serial). Any N produces byte-identical
//                   output — the parallel_for is deterministic; see
//                   src/util/concurrency/thread_pool.hpp.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/experiment.hpp"
#include "bartercast/backend.hpp"
#include "check/audit.hpp"
#include "community/simulator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_writer.hpp"
#include "trace/generator.hpp"
#include "util/flags.hpp"

using namespace bc;

int main(int argc, char** argv) {
  const std::map<std::string, std::string> allowed = {
      {"validate", "run the bc::check invariant audits during the simulation"},
      {"metrics-out", "write metrics + profile JSON to this path"},
      {"metrics-csv", "write metrics CSV to this path"},
      {"trace-out", "write a sim-time Chrome trace JSON to this path"},
      {"metrics-stream", "append windowed metric deltas (NDJSON) to this path"},
      {"trace-ring", "flight recorder: keep only the last N trace events"},
      {"profile", "profile hot sites and print the report"},
      {"threads", "worker threads for the batch reputation sweeps (>= 1)"},
      {"population", "behavior spec, e.g. \"sharer:0.5,lazy:0.3,sybil:0.2\""},
      {"backend", "reputation backend: maxflow (default) or gossip"},
  };
  auto flags = Flags::parse(argc, argv, allowed);
  if (!flags.has_value()) {
    std::fputs(Flags::usage(argv[0], allowed).c_str(), stderr);
    return 1;
  }
  if (flags->get_bool("validate", false)) check::set_enabled(true);

  const std::string metrics_out = flags->get("metrics-out", "");
  const std::string metrics_csv = flags->get("metrics-csv", "");
  const std::string trace_out = flags->get("trace-out", "");
  const std::string metrics_stream = flags->get("metrics-stream", "");
  const std::int64_t trace_ring = flags->get_int("trace-ring", 0);
  if (trace_ring < 0) {
    std::fprintf(stderr, "error: --trace-ring must be >= 0\n");
    return 1;
  }
  const bool profile = flags->get_bool("profile", false) ||
                       !metrics_out.empty() || !trace_out.empty();
  // Enable before the simulator is constructed: schedule_periodics checks
  // the tracer flag to decide whether to emit counter-track snapshots.
  if (profile) obs::Profiler::instance().set_enabled(true);
  if (!trace_out.empty()) {
    auto& tracer = obs::Tracer::instance();
    tracer.set_enabled(true);
    tracer.set_dump_path(trace_out);
    if (trace_ring > 0) {
      // Flight recorder: bound memory to the last N events, dump the ring
      // on demand (SIGUSR1, served at window boundaries) and on any
      // invariant-audit failure, before the default handler aborts.
      tracer.set_ring_capacity(static_cast<std::size_t>(trace_ring));
      tracer.arm_signal_dump(SIGUSR1);
      check::set_failure_observer(
          [](const std::string&) { obs::Tracer::instance().dump_now(); });
    }
  }

  trace::GeneratorConfig tcfg;
  tcfg.seed = 2024;
  tcfg.num_peers = 30;
  tcfg.num_swarms = 4;
  tcfg.duration = 2.0 * kDay;
  tcfg.file_size_max = mib(600);
  tcfg.requests_per_peer_min = 2;
  tcfg.requests_per_peer_max = 4;

  community::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.policy = bartercast::ReputationPolicy::ban(-0.5);
  cfg.series_bin = 2.0 * kHour;
  const std::int64_t threads = flags->get_int("threads", 1);
  if (!flags->valid() || threads < 1) {
    std::fprintf(stderr, "error: --threads must be an integer >= 1\n");
    return 1;
  }
  cfg.threads = static_cast<std::size_t>(threads);
  cfg.metrics_stream_path = metrics_stream;
  cfg.population = flags->get("population", "");
  const std::string backend = flags->get("backend", "maxflow");
  const auto backend_kind = bartercast::parse_backend(backend);
  if (!backend_kind.has_value()) {
    std::fprintf(stderr, "error: unknown --backend '%s'\n", backend.c_str());
    return 1;
  }
  cfg.node.backend = *backend_kind;
  const std::string config_error = cfg.validate();
  if (!config_error.empty()) {
    std::fprintf(stderr, "error: %s\n", config_error.c_str());
    return 1;
  }

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const auto& m = sim.metrics();

  std::printf("== download speed over time (policy: %s) ==\n",
              cfg.policy.name().c_str());
  std::cout << analysis::speed_table(m, kHour).to_string();

  std::printf("\n== system reputation over time ==\n");
  std::cout << analysis::reputation_table(m, kHour).to_string();

  std::printf("\n== per-peer outcome ==\n");
  Table t({"peer", "class", "up", "down", "reputation", "completed"});
  for (const auto& o : m.outcomes) {
    t.add_row({std::to_string(o.peer),
               o.freerider ? "freerider" : "sharer",
               fmt_bytes(o.total_uploaded), fmt_bytes(o.total_downloaded),
               fmt(o.final_system_reputation, 3),
               std::to_string(o.files_completed) + "/" +
                   std::to_string(o.files_requested)});
  }
  std::cout << t.to_string();

  std::printf("\ncontribution/reputation correlation: pearson=%.3f\n",
              analysis::contribution_correlation(m));
  std::printf("messages: %llu sent, %llu received, %llu records applied\n",
              static_cast<unsigned long long>(m.messages.messages_sent),
              static_cast<unsigned long long>(m.messages.messages_received),
              static_cast<unsigned long long>(m.messages.records_applied));
  std::printf("records dropped: %llu total (%llu third-party, %llu own-edge, "
              "%llu self-report)\n",
              static_cast<unsigned long long>(m.messages.records_dropped()),
              static_cast<unsigned long long>(m.messages.dropped_third_party),
              static_cast<unsigned long long>(m.messages.dropped_own_edge),
              static_cast<unsigned long long>(m.messages.dropped_self_report));

  if (profile) {
    std::printf("\n== profile (wall time per site) ==\n%s",
                obs::profile_report(obs::Profiler::instance()).c_str());
  }
  if (!metrics_out.empty()) {
    const std::string json = obs::metrics_json(obs::Registry::instance(),
                                               obs::Profiler::instance());
    if (!obs::write_text_file(metrics_out, json)) {
      std::fprintf(stderr, "error: could not write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("metrics JSON written to %s\n", metrics_out.c_str());
  }
  if (!metrics_csv.empty()) {
    if (!obs::write_text_file(metrics_csv,
                              obs::metrics_csv(obs::Registry::instance()))) {
      std::fprintf(stderr, "error: could not write %s\n", metrics_csv.c_str());
      return 1;
    }
    std::printf("metrics CSV written to %s\n", metrics_csv.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::instance().write_file(trace_out)) {
      std::fprintf(stderr, "error: could not write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("chrome trace (%zu events", obs::Tracer::instance().size());
    if (obs::Tracer::instance().dropped_events() > 0) {
      std::printf(", %llu older events evicted by the ring",
                  static_cast<unsigned long long>(
                      obs::Tracer::instance().dropped_events()));
    }
    std::printf(") written to %s\n", trace_out.c_str());
  }
  if (!metrics_stream.empty()) {
    std::printf("metrics stream (NDJSON) written to %s\n",
                metrics_stream.c_str());
  }

  if (check::enabled()) {
    check::Report report;
    sim.audit(report);
    std::printf("invariant audit: %s (%llu audit hooks ran)\n",
                report.ok() ? "clean" : report.to_string().c_str(),
                static_cast<unsigned long long>(
                    check::ScopedAudit::audits_run()));
    if (!report.ok()) return 1;
  }
  return 0;
}
