// Example: a small trace-driven community simulation.
//
// Generates a 2-day synthetic trace (30 peers, 4 swarms), runs the full
// stack (BitTorrent + PSS + BarterCast + ban policy) and prints the
// per-class download speeds and reputations over time.
//
// Build & run:  ./build/examples/swarm_simulation
#include <cstdio>
#include <iostream>

#include "analysis/experiment.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"

using namespace bc;

int main() {
  trace::GeneratorConfig tcfg;
  tcfg.seed = 2024;
  tcfg.num_peers = 30;
  tcfg.num_swarms = 4;
  tcfg.duration = 2.0 * kDay;
  tcfg.file_size_max = mib(600);
  tcfg.requests_per_peer_min = 2;
  tcfg.requests_per_peer_max = 4;

  community::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.policy = bartercast::ReputationPolicy::ban(-0.5);
  cfg.series_bin = 2.0 * kHour;

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const auto& m = sim.metrics();

  std::printf("== download speed over time (policy: %s) ==\n",
              cfg.policy.name().c_str());
  std::cout << analysis::speed_table(m, kHour).to_string();

  std::printf("\n== system reputation over time ==\n");
  std::cout << analysis::reputation_table(m, kHour).to_string();

  std::printf("\n== per-peer outcome ==\n");
  Table t({"peer", "class", "up", "down", "reputation", "completed"});
  for (const auto& o : m.outcomes) {
    t.add_row({std::to_string(o.peer),
               community::is_freerider(o.behavior) ? "freerider" : "sharer",
               fmt_bytes(o.total_uploaded), fmt_bytes(o.total_downloaded),
               fmt(o.final_system_reputation, 3),
               std::to_string(o.files_completed) + "/" +
                   std::to_string(o.files_requested)});
  }
  std::cout << t.to_string();

  std::printf("\ncontribution/reputation correlation: pearson=%.3f\n",
              analysis::contribution_correlation(m));
  std::printf("messages: %llu sent, %llu received, %llu records applied\n",
              static_cast<unsigned long long>(m.messages.messages_sent),
              static_cast<unsigned long long>(m.messages.messages_received),
              static_cast<unsigned long long>(m.messages.records_applied));
  return 0;
}
