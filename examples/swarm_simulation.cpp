// Example: a small trace-driven community simulation.
//
// Generates a 2-day synthetic trace (30 peers, 4 swarms), runs the full
// stack (BitTorrent + PSS + BarterCast + ban policy) and prints the
// per-class download speeds and reputations over time.
//
// Build & run:  ./build/examples/swarm_simulation
//   --validate  turn on the bc::check invariant audits for the whole run
//               (ledger conservation per round, Eq. 1 bounds at the end);
//               any violation aborts with a report. Validate builds
//               (-DBARTERCAST_VALIDATE=ON) audit by default.
#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/experiment.hpp"
#include "check/audit.hpp"
#include "community/simulator.hpp"
#include "trace/generator.hpp"
#include "util/flags.hpp"

using namespace bc;

int main(int argc, char** argv) {
  const std::map<std::string, std::string> allowed = {
      {"validate", "run the bc::check invariant audits during the simulation"},
  };
  const auto flags = Flags::parse(argc, argv, allowed);
  if (!flags.has_value()) {
    std::fputs(Flags::usage(argv[0], allowed).c_str(), stderr);
    return 1;
  }
  if (flags->get_bool("validate", false)) check::set_enabled(true);

  trace::GeneratorConfig tcfg;
  tcfg.seed = 2024;
  tcfg.num_peers = 30;
  tcfg.num_swarms = 4;
  tcfg.duration = 2.0 * kDay;
  tcfg.file_size_max = mib(600);
  tcfg.requests_per_peer_min = 2;
  tcfg.requests_per_peer_max = 4;

  community::ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.policy = bartercast::ReputationPolicy::ban(-0.5);
  cfg.series_bin = 2.0 * kHour;

  community::CommunitySimulator sim(trace::generate(tcfg), cfg);
  sim.run();
  const auto& m = sim.metrics();

  std::printf("== download speed over time (policy: %s) ==\n",
              cfg.policy.name().c_str());
  std::cout << analysis::speed_table(m, kHour).to_string();

  std::printf("\n== system reputation over time ==\n");
  std::cout << analysis::reputation_table(m, kHour).to_string();

  std::printf("\n== per-peer outcome ==\n");
  Table t({"peer", "class", "up", "down", "reputation", "completed"});
  for (const auto& o : m.outcomes) {
    t.add_row({std::to_string(o.peer),
               community::is_freerider(o.behavior) ? "freerider" : "sharer",
               fmt_bytes(o.total_uploaded), fmt_bytes(o.total_downloaded),
               fmt(o.final_system_reputation, 3),
               std::to_string(o.files_completed) + "/" +
                   std::to_string(o.files_requested)});
  }
  std::cout << t.to_string();

  std::printf("\ncontribution/reputation correlation: pearson=%.3f\n",
              analysis::contribution_correlation(m));
  std::printf("messages: %llu sent, %llu received, %llu records applied\n",
              static_cast<unsigned long long>(m.messages.messages_sent),
              static_cast<unsigned long long>(m.messages.messages_received),
              static_cast<unsigned long long>(m.messages.records_applied));

  if (check::enabled()) {
    check::Report report;
    sim.audit(report);
    std::printf("invariant audit: %s (%llu audit hooks ran)\n",
                report.ok() ? "clean" : report.to_string().c_str(),
                static_cast<unsigned long long>(
                    check::ScopedAudit::audits_run()));
    if (!report.ok()) return 1;
  }
  return 0;
}
